package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
)

// TestOpenSelectsBackend pins the factory seam: Shards <= 1 keeps the
// single-counter Log, anything larger selects sharded capture.
func TestOpenSelectsBackend(t *testing.T) {
	for _, shards := range []int{0, 1} {
		if _, ok := Open(LevelView, Options{Shards: shards}).(*Log); !ok {
			t.Fatalf("Shards=%d: want *Log", shards)
		}
	}
	b := Open(LevelView, Options{Shards: 4})
	g, ok := b.(*ShardedLog)
	if !ok {
		t.Fatalf("Shards=4: want *ShardedLog, got %T", b)
	}
	if g.Shards() != 4 {
		t.Fatalf("shard count = %d, want 4", g.Shards())
	}
	g.Close()
}

// shardedPropertyRun drives nProd producers over nVars shared variables
// through a sharded log. Each logged action is performed inside the
// variable's critical section, so the variable's version counter is the
// ground-truth commit order; the entry records the variable (Method), its
// version (Args[0]) and the producer's local program-order index (Args[1]).
func shardedPropertyRun(t *testing.T, g *ShardedLog, nProd, nVars, perProd int) (online []event.Entry) {
	t.Helper()
	r := g.Reader()
	drained := make(chan []event.Entry)
	go func() {
		var got []event.Entry
		for {
			e, ok := r.Next()
			if !ok {
				break
			}
			got = append(got, e)
		}
		drained <- got
	}()

	type variable struct {
		mu  sync.Mutex
		ver int
	}
	vars := make([]variable, nVars)
	var wg sync.WaitGroup
	for p := 0; p < nProd; p++ {
		tid := g.NewTid()
		ap := g.AppenderFor(tid)
		wg.Add(1)
		go func(seed int64, tid int32) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perProd; i++ {
				vi := rng.Intn(nVars)
				v := &vars[vi]
				v.mu.Lock()
				v.ver++
				// The append runs inside the variable's critical section —
				// the instrumentation discipline the timestamp soundness
				// argument rests on.
				ap.Append(event.Entry{
					Tid: tid, Kind: event.KindCall, Method: fmt.Sprintf("v%d", vi),
					Label: fmt.Sprintf("%d", v.ver),
					Args:  []event.Value{vi, v.ver, i},
				})
				v.mu.Unlock()
			}
		}(int64(p+1), tid)
	}
	wg.Wait()
	g.Close()
	return <-drained
}

// checkMergedStream asserts the three invariants the merge owes the
// checker: dense sequence numbers from 1, strictly increasing version per
// variable (commit order), and program order within each producer thread.
func checkMergedStream(t *testing.T, entries []event.Entry, total int) {
	t.Helper()
	if len(entries) != total {
		t.Fatalf("merged stream has %d entries, want %d", len(entries), total)
	}
	lastVer := map[int]int{}
	lastIdx := map[int32]int{}
	for i, e := range entries {
		if e.Seq != int64(i+1) {
			t.Fatalf("entry %d: seq %d, want dense %d", i, e.Seq, i+1)
		}
		vi, _ := event.Int(e.Args[0])
		ver, _ := event.Int(e.Args[1])
		idx, _ := event.Int(e.Args[2])
		if ver <= lastVer[vi] {
			t.Fatalf("entry %d: variable %d version %d after %d — per-variable commit order inverted",
				i, vi, ver, lastVer[vi])
		}
		lastVer[vi] = ver
		if prev, seen := lastIdx[e.Tid]; seen && idx != prev+1 {
			t.Fatalf("entry %d: tid %d local index %d after %d — thread program order broken",
				i, e.Tid, idx, prev)
		}
		lastIdx[e.Tid] = idx
	}
}

// TestShardedMergePreservesCommitAndProgramOrder is the property test of
// the k-way merge: for randomized cross-shard interleavings, the merged
// total order keeps every variable's write/commit order and every
// thread's append order, with dense output sequence numbers — exactly the
// per-variable guarantee the refinement witness needs.
func TestShardedMergePreservesCommitAndProgramOrder(t *testing.T) {
	const nProd, nVars, perProd = 8, 5, 400
	g := NewSharded(LevelView, Options{Shards: 4, SegmentSize: 64, ShardBatch: 16})
	online := shardedPropertyRun(t, g, nProd, nVars, perProd)
	checkMergedStream(t, online, nProd*perProd)

	// The offline merge (Snapshot) must agree with the online merge
	// entry for entry: same sort key, same total order.
	offline := g.Snapshot()
	if len(offline) != len(online) {
		t.Fatalf("snapshot has %d entries, online drain %d", len(offline), len(online))
	}
	for i := range offline {
		if offline[i].Tid != online[i].Tid || offline[i].Label != online[i].Label ||
			offline[i].Seq != online[i].Seq {
			t.Fatalf("snapshot and online merge diverge at %d: %+v vs %+v",
				i, offline[i], online[i])
		}
	}
}

// TestShardedTicketModeOrder pins the coarse-clock degradation: with
// timestamps disabled the global ticket counter must reproduce the
// single-counter total order over sharded storage, same invariants.
func TestShardedTicketModeOrder(t *testing.T) {
	const nProd, nVars, perProd = 8, 5, 300
	g := NewSharded(LevelView, Options{Shards: 4, SegmentSize: 64, ShardBatch: 16})
	g.mono = false // force the degraded mode regardless of the host clock
	if g.Monotonic() {
		t.Fatal("ticket mode not forced")
	}
	online := shardedPropertyRun(t, g, nProd, nVars, perProd)
	checkMergedStream(t, online, nProd*perProd)
}

// TestShardedSingleShard pins the n=1 edge: one shard is a plain log
// behind the merge surface.
func TestShardedSingleShard(t *testing.T) {
	g := NewSharded(LevelView, Options{Shards: 1})
	online := shardedPropertyRun(t, g, 3, 2, 100)
	checkMergedStream(t, online, 300)
}

// TestShardedRecoveryPrefix crashes a sharded capture's persisted stream
// at arbitrary byte offsets and requires recovery to yield a
// checksum-valid prefix of the merged order — the merge-at-persist design
// means the recovery machinery never learns sharding existed.
func TestShardedRecoveryPrefix(t *testing.T) {
	g := NewSharded(LevelView, Options{Shards: 4, ShardBatch: 8, SyncEvery: 16})
	var buf bytes.Buffer
	if err := g.AttachSink(&buf); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		tid := g.NewTid()
		ap := g.AppenderFor(tid)
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ap.Append(event.Entry{Tid: tid, Kind: event.KindCall, Method: "M",
					Label: fmt.Sprintf("%d", i)})
			}
		}(tid)
	}
	wg.Wait()
	g.Close()
	if err := g.SinkErr(); err != nil {
		t.Fatal(err)
	}

	full, err := ReadFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 800 {
		t.Fatalf("persisted %d entries, want 800", len(full))
	}
	rng := rand.New(rand.NewSource(7))
	cuts := []int{0, 1, len(buf.Bytes()) - 1}
	for i := 0; i < 40; i++ {
		cuts = append(cuts, rng.Intn(len(buf.Bytes())))
	}
	for _, cut := range cuts {
		got, _, err := RecoverReader(bytes.NewReader(buf.Bytes()[:cut]))
		if err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		if len(got) > len(full) {
			t.Fatalf("cut %d: recovered more entries than were written", cut)
		}
		for j, e := range got {
			if e.Seq != full[j].Seq || e.Tid != full[j].Tid || e.Label != full[j].Label {
				t.Fatalf("cut %d: recovered entry %d = %+v, want prefix of full stream (%+v)",
					cut, j, e, full[j])
			}
		}
	}
}

// TestShardedWindowWakeStress is the parked-producer wake audit under
// sharding (ISSUE 7 satellite): a tiny global window split across shards,
// more producers than shards, and a merge consumer that stalls at random
// — every producer park must be matched by a publish-side wake (each
// shard owns its own minWait/cond pair and the admission gate runs before
// the shard lock, so no waiter ever spans shards and the merge's
// watermark try-lock can never hit a parked lock-holder). Deadlock here
// fails the test by timeout; bounded retention is asserted via Stats.
func TestShardedWindowWakeStress(t *testing.T) {
	const nProd, perProd = 8, 2_000
	g := NewSharded(LevelView, Options{Shards: 4, SegmentSize: 16, Window: 128, ShardBatch: 4})
	r := g.Reader()
	done := make(chan int)
	go func() {
		rng := rand.New(rand.NewSource(42))
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
			if rng.Intn(512) == 0 {
				time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
			}
		}
		done <- n
	}()
	var wg sync.WaitGroup
	for p := 0; p < nProd; p++ {
		tid := g.NewTid()
		ap := g.AppenderFor(tid)
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				ap.Append(event.Entry{Tid: tid, Kind: event.KindCall, Method: "M"})
			}
		}(tid)
	}
	wg.Wait()
	g.Close()
	if n := <-done; n != nProd*perProd {
		t.Fatalf("consumer drained %d entries, want %d", n, nProd*perProd)
	}
	st := g.Stats()
	if st.Appends != nProd*perProd {
		t.Fatalf("stats appends = %d, want %d", st.Appends, nProd*perProd)
	}
	// Per-shard peaks are bounded by the shard window plus one segment of
	// slack each; the sum bounds the aggregate.
	limit := int64(128 + 4*16)
	if st.PeakRetainedEntries > limit {
		t.Fatalf("peak retained %d exceeds window budget bound %d", st.PeakRetainedEntries, limit)
	}
}

// TestShardedStatsAggregate pins the read-side aggregation surface.
func TestShardedStatsAggregate(t *testing.T) {
	g := NewSharded(LevelView, Options{Shards: 2})
	ap := g.AppenderFor(g.NewTid())
	for i := 0; i < 10; i++ {
		ap.Append(event.Entry{Tid: 1, Kind: event.KindCall, Method: "M"})
	}
	g.Close()
	st := g.Stats()
	if st.Appends != 10 || st.Shards != 2 {
		t.Fatalf("stats = %+v, want 10 appends over 2 shards", st)
	}
	if g.Len() != 10 {
		t.Fatalf("len = %d, want 10", g.Len())
	}
}

// FuzzShardMerge drives deterministic multi-tid append schedules with
// arbitrary shard counts and batch boundaries through the merge and
// requires: no panics, a dense 1..N output, and per-tid projections that
// preserve append order.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte{2, 3, 0, 1, 2, 0, 1, 2, 0})
	f.Add([]byte{4, 1, 3, 3, 3, 2, 2, 1, 0, 0, 1, 2, 3})
	f.Add([]byte{1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		shards := int(data[0]%4) + 1
		batch := int(data[1]%8) + 1
		g := NewSharded(LevelView, Options{
			Shards: shards, ShardBatch: batch, SegmentSize: 8,
		})
		if data[0]&0x80 != 0 {
			g.mono = false // exercise ticket mode under the same schedules
		}
		const nTids = 4
		aps := make([]Appender, nTids)
		tids := make([]int32, nTids)
		for i := range aps {
			tids[i] = g.NewTid()
			aps[i] = g.AppenderFor(tids[i])
		}
		counts := make([]int, nTids)
		for _, b := range data[2:] {
			i := int(b) % nTids
			aps[i].Append(event.Entry{Tid: tids[i], Kind: event.KindCall,
				Method: "M", Label: fmt.Sprintf("%d", counts[i])})
			counts[i]++
		}
		r := g.Reader()
		g.Close()
		total := len(data[2:])
		seen := 0
		next := make(map[int32]int)
		for {
			e, ok := r.Next()
			if !ok {
				break
			}
			seen++
			if e.Seq != int64(seen) {
				t.Fatalf("seq %d at position %d: gaps or duplicates in merged stream", e.Seq, seen)
			}
			if e.Label != fmt.Sprintf("%d", next[e.Tid]) {
				t.Fatalf("tid %d: entry %q out of per-thread order (want %d)", e.Tid, e.Label, next[e.Tid])
			}
			next[e.Tid]++
		}
		if seen != total {
			t.Fatalf("merged %d entries, appended %d", seen, total)
		}
	})
}

// BenchmarkAppendParallelSharded is BenchmarkAppendParallel's A/B partner
// over sharded capture: same truncating reader-free setup, so the
// measurement isolates batch reservation + timestamped slot publication.
// Run both with -cpu 1,4,8: the single-counter log stays flat (every core
// bounces the reservation line) while this one should scale.
func BenchmarkAppendParallelSharded(b *testing.B) {
	g := NewSharded(LevelView, Options{
		Shards: runtime.GOMAXPROCS(0), SegmentSize: 1024, Truncate: true,
	})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tid := g.NewTid()
		ap := g.AppenderFor(tid)
		e := entry(tid, "M")
		e.Tid = tid
		for pb.Next() {
			ap.Append(e)
		}
	})
	b.StopTimer()
	g.Close()
}

// BenchmarkOnlinePipeline measures the capture-to-checker pipeline inside
// the wal package: parallel producers appending while one consumer drains
// the total order (a Cursor on the global log, the k-way merge on the
// sharded one). This is the number the sharding refactor exists to move:
// aggregate append throughput with a live reader attached.
func BenchmarkOnlinePipeline(b *testing.B) {
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"global", 0},
		{"sharded", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			lg := Open(LevelView, Options{
				SegmentSize: 4096, Window: 1 << 16, Shards: bc.shards,
			})
			r := lg.Reader()
			done := make(chan int64)
			go func() {
				var n int64
				for {
					if _, ok := r.Next(); !ok {
						break
					}
					n++
				}
				done <- n
			}()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				tid := lg.NewTid()
				ap := lg.AppenderFor(tid)
				e := entry(tid, "M")
				e.Tid = tid
				for pb.Next() {
					ap.Append(e)
				}
			})
			b.StopTimer()
			lg.Close()
			<-done
		})
	}
}

// TestShardedTicketsOptionIngestOrder pins the Options.Tickets contract
// the remote server's per-session logs and online replay rely on: a
// single goroutine feeding an already-ordered stream through a sharded
// backend must read back exactly its append order. Timestamp keys cannot
// promise this — back-to-back appends routed to different shards can land
// in one clock tick and tie-break on unordered batch seqs — so Tickets
// forces the per-log counter key regardless of the host clock.
func TestShardedTicketsOptionIngestOrder(t *testing.T) {
	b := Open(LevelView, Options{Shards: 4, Tickets: true, ShardBatch: 8})
	g, ok := b.(*ShardedLog)
	if !ok {
		t.Fatalf("want *ShardedLog, got %T", b)
	}
	if g.Monotonic() {
		t.Fatal("Options.Tickets did not force ticket mode")
	}
	r := g.Reader()
	const total = 4000
	for i := 0; i < total; i++ {
		// Rotate tids so consecutive entries land on different shards —
		// the exact shape session ingest produces.
		g.Append(event.Entry{Tid: int32(i%8 + 1), Kind: event.KindCall,
			Method: "M", Args: []event.Value{i}})
	}
	g.Close()
	for i := 0; i < total; i++ {
		e, ok := r.Next()
		if !ok {
			t.Fatalf("merged stream ended at %d, want %d entries", i, total)
		}
		if idx, _ := event.Int(e.Args[0]); idx != i {
			t.Fatalf("position %d: got ingest index %d — merged order diverged from append order", i, idx)
		}
		if e.Seq != int64(i+1) {
			t.Fatalf("position %d: seq %d, want dense %d", i, e.Seq, i+1)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra entries after the appended stream")
	}
}

// TestShardedMergeCrossShardHandoffOrder stresses the watermark protocol
// with the hardest causal shape: every append is one link of a single
// mutex-protected chain, so the merged stream must reproduce the chain
// indices exactly in order even though consecutive links land on
// different shards. This is the invariant the load-watermark-before-peek
// order in shardCannotUndercut protects: a producer preempted between its
// clock read and its publish must never be overtaken in the merge by a
// later, larger-key entry.
func TestShardedMergeCrossShardHandoffOrder(t *testing.T) {
	const nProd, perProd = 4, 8000
	g := NewSharded(LevelView, Options{Shards: 4, SegmentSize: 64, ShardBatch: 16})
	r := g.Reader()
	drained := make(chan error, 1)
	go func() {
		want := 0
		for {
			e, ok := r.Next()
			if !ok {
				break
			}
			if k, _ := event.Int(e.Args[0]); k != want {
				drained <- fmt.Errorf("merged position %d: chain index %d — cross-shard handoff order broken", want, k)
				// Keep draining so producers blocked on nothing exit.
				for {
					if _, ok := r.Next(); !ok {
						break
					}
				}
				return
			}
			want++
		}
		if want != nProd*perProd {
			drained <- fmt.Errorf("merged %d entries, want %d", want, nProd*perProd)
			return
		}
		drained <- nil
	}()

	var chainMu sync.Mutex
	chain := 0
	var wg sync.WaitGroup
	for p := 0; p < nProd; p++ {
		tid := g.NewTid()
		ap := g.AppenderFor(tid)
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				chainMu.Lock()
				k := chain
				chain++
				ap.Append(event.Entry{Tid: tid, Kind: event.KindCall,
					Method: "link", Args: []event.Value{k}})
				chainMu.Unlock()
			}
		}(tid)
	}
	wg.Wait()
	g.Close()
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
}

// TestShardedSnapshotSeqResumesAfterTruncation pins the numbering
// symmetry between the two Backend snapshots: like Log.Snapshot, a
// sharded snapshot of a truncated log must start its sequence numbers
// right after the truncated prefix (the summed per-shard truncated-entry
// count — the same positional base MergeCursor uses), not renumber the
// retained suffix densely from 1.
func TestShardedSnapshotSeqResumesAfterTruncation(t *testing.T) {
	g := NewSharded(LevelView, Options{Shards: 2, SegmentSize: 8, Truncate: true})
	const total = 256
	for i := 0; i < total; i++ {
		g.Append(event.Entry{Tid: int32(i%4 + 1), Kind: event.KindCall, Method: "M"})
	}
	snap := g.Snapshot()
	base := g.Stats().TruncatedEntries
	if base == 0 {
		t.Fatalf("no truncation after %d appends over 8-entry segments; test needs a released prefix", total)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot of a non-empty log")
	}
	if snap[0].Seq != base+1 {
		t.Fatalf("snapshot starts at seq %d, want %d (truncated prefix %d)", snap[0].Seq, base+1, base)
	}
	for i, e := range snap {
		if e.Seq != base+int64(i+1) {
			t.Fatalf("snapshot position %d: seq %d, want contiguous %d", i, e.Seq, base+int64(i+1))
		}
	}
	g.Close()
}
