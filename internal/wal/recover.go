package wal

import (
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/faultfs"
)

// Crash recovery. A producer that dies mid-run leaves its log file with a
// torn tail: a frame cut by the crash, or garbage past the last fsync'd
// sync point. Recover scans the file for its longest valid prefix (see
// event.ScanRecover), truncates the tail away so the file becomes a valid
// stream every reader accepts, and reports exactly what was kept and
// dropped. The recovered prefix is a real execution history of the crashed
// process — the checker's verdict over it is a verdict about the run up to
// the crash, which is what the soak harness asserts.

// CrashFile is what Recover needs from a file: read it all, then cut the
// torn tail. *os.File and faultfs.File satisfy it.
type CrashFile interface {
	io.Reader
	Truncate(size int64) error
}

// RecoveryReport describes the outcome of one recovery.
type RecoveryReport struct {
	// FormatVersion is the stream's format version (0 when the file had no
	// readable VYRDLOG header).
	FormatVersion int `json:"format_version"`
	// FramesKept counts the valid frames retained (entries + markers).
	FramesKept int `json:"frames_kept"`
	// SyncMarkers counts the sync markers within the kept prefix.
	SyncMarkers int `json:"sync_markers"`
	// LastSeq is the sequence number of the last recovered entry.
	LastSeq int64 `json:"last_seq"`
	// BytesKept is the length of the valid prefix.
	BytesKept int64 `json:"bytes_kept"`
	// BytesDropped is how much torn tail was discarded.
	BytesDropped int64 `json:"bytes_dropped"`
	// FirstBadOffset is the offset of the first invalid byte (-1 when the
	// file was already a fully valid stream).
	FirstBadOffset int64 `json:"first_bad_offset"`
	// Truncated reports whether the file was modified.
	Truncated bool `json:"truncated"`
}

// Clean reports whether the log needed no repair.
func (r RecoveryReport) Clean() bool { return r.FirstBadOffset < 0 }

func (r RecoveryReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("clean: v%d, %d frames (%d markers), last seq %d, %d bytes",
			r.FormatVersion, r.FramesKept, r.SyncMarkers, r.LastSeq, r.BytesKept)
	}
	return fmt.Sprintf("recovered: v%d, kept %d frames (%d markers) / %d bytes through seq %d, dropped %d bytes at offset %d",
		r.FormatVersion, r.FramesKept, r.SyncMarkers, r.BytesKept, r.LastSeq, r.BytesDropped, r.FirstBadOffset)
}

// Recover reads f in full, finds its longest valid prefix, and truncates
// the file to it. It returns the recovered entries alongside the report.
//
// A version-1 (gob) stream is refused without modification: gob streams
// are stateful and cannot be frame-scanned, and a readable old artifact
// must not be destroyed by pointing recovery at it. Any other input —
// including one with no recognizable header at all — is truncated to its
// valid prefix, which may be empty; recovery's contract is that afterwards
// the file is a stream the default reader accepts.
func Recover(f CrashFile) ([]event.Entry, RecoveryReport, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, RecoveryReport{}, fmt.Errorf("wal: recover: read: %w", err)
	}
	entries, rep, err := scanRecover(data)
	if err != nil {
		return nil, rep, err
	}
	if !rep.Clean() {
		if terr := f.Truncate(rep.BytesKept); terr != nil {
			return entries, rep, fmt.Errorf("wal: recover: truncate torn tail: %w", terr)
		}
		rep.Truncated = true
	}
	return entries, rep, nil
}

// RecoverReader scans r like Recover but cannot repair it (a pipe, stdin):
// the report says what a Recover on the backing file would do, and the
// returned entries are the recovered prefix. Truncated is always false.
func RecoverReader(r io.Reader) ([]event.Entry, RecoveryReport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, RecoveryReport{}, fmt.Errorf("wal: recover: read: %w", err)
	}
	return scanRecover(data)
}

// RecoverPath opens path read-write through fsys and recovers it in place.
func RecoverPath(fsys faultfs.FS, path string) ([]event.Entry, RecoveryReport, error) {
	f, err := fsys.OpenRW(path)
	if err != nil {
		return nil, RecoveryReport{}, fmt.Errorf("wal: recover: %w", err)
	}
	defer f.Close()
	return Recover(f)
}

func scanRecover(data []byte) ([]event.Entry, RecoveryReport, error) {
	res := event.ScanRecover(data)
	rep := RecoveryReport{
		FormatVersion:  int(res.Version),
		FramesKept:     res.Frames,
		SyncMarkers:    res.SyncMarkers,
		LastSeq:        res.LastSeq,
		BytesKept:      res.BytesKept,
		BytesDropped:   int64(len(data)) - res.BytesKept,
		FirstBadOffset: res.BadOffset,
	}
	if res.Version == 1 {
		return nil, rep, fmt.Errorf("wal: recover: %w: version-1 gob streams cannot be frame-scanned; read the artifact with ReadFileCodec(CodecGob) instead", event.ErrFormatMismatch)
	}
	return res.Entries, rep, nil
}
