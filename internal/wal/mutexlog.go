package wal

import (
	"sync"

	"repro/internal/event"
)

// MutexLog is the original single-mutex execution log, retained for A/B
// benchmarking against the segmented Log (BenchmarkAppendParallelMutex vs
// BenchmarkAppendParallel). Every producer serializes through one mutex, a
// condition variable is broadcast on each append, and the backing slice
// grows without bound — the behavior the segmented log was built to
// replace. It is not part of the checking pipeline.
type MutexLog struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries []event.Entry
	closed  bool
}

// NewMutexLog returns an empty mutex-serialized log.
func NewMutexLog() *MutexLog {
	l := &MutexLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Append adds an entry, assigning and returning its sequence number.
func (l *MutexLog) Append(e event.Entry) int64 {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		panic("wal: append to closed log")
	}
	e.Seq = int64(len(l.entries)) + 1
	l.entries = append(l.entries, e)
	l.cond.Broadcast()
	l.mu.Unlock()
	return e.Seq
}

// Len reports the number of entries appended so far.
func (l *MutexLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Close marks the log complete and wakes blocked readers.
func (l *MutexLog) Close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Next returns the entry after pos, blocking until it is appended or the
// log is closed and drained.
func (l *MutexLog) Next(pos int) (event.Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for pos >= len(l.entries) {
		if l.closed {
			return event.Entry{}, false
		}
		l.cond.Wait()
	}
	return l.entries[pos], true
}
