// Package wal implements the VYRD execution log (Section 4.2 and 6.1 of the
// paper): a totally ordered, concurrently appended record of the visible
// actions of an instrumented implementation.
//
// Implementation threads append entries as they run; the verification thread
// reads them through a Cursor and performs refinement checking, either
// concurrently with the execution (online) or afterwards from a snapshot or
// a persisted file (offline). To keep log order consistent with the
// execution, instrumented code appends each entry while holding the locks
// that make the logged action visible to other threads, so the sequence
// numbers assigned here coincide with the order the actions take effect.
//
// # Architecture
//
// The paper's own measurements (Tables 2-3) make logging the dominant
// runtime cost of VYRD, so the log is built as a high-throughput pipeline
// rather than a mutex-guarded slice:
//
//   - Appends reserve a sequence number with a single atomic increment and
//     publish the entry into a slot of a fixed-size segment by storing the
//     sequence number into the slot's publication field (readers accept a
//     slot only when it matches). Concurrent producers never contend on a
//     lock in the steady state; the shared mutex is touched only on segment
//     boundaries and when a reader is parked.
//   - Storage is chunked: segments of SegmentSize entries, reachable
//     through a small index map, instead of one ever-growing slice. With
//     truncation enabled (Options.Truncate), segments fully consumed by
//     every registered reader are released, so online checking of a long
//     run retains O(window) entries instead of O(execution).
//   - Persistence (AttachSink) is asynchronous: a sink goroutine drains
//     committed entries through a bufio.Writer-backed gob encoder, instead
//     of encoding synchronously inside the append path. Close waits for the
//     sink to drain and flush, and SinkErr reports the first write or flush
//     failure.
//   - Stats() exposes lightweight counters (appends, blocked waits,
//     truncated segments, sink queue depth, max verifier lag) for the
//     benchmark tables and for capacity planning.
//
// The previous single-mutex implementation is retained as MutexLog for A/B
// benchmarking (BenchmarkAppendParallel vs BenchmarkAppendParallelMutex).
package wal

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/event"
)

// Level selects how much of the execution is recorded (Section 6.2; Table 2
// measures the cost of each level).
type Level uint8

const (
	// LevelOff disables logging entirely; every probe operation is a no-op.
	// This is the "program alone" baseline of Tables 2 and 3.
	LevelOff Level = iota
	// LevelIO records call, return and commit actions: everything I/O
	// refinement checking needs (Section 4.2).
	LevelIO
	// LevelView additionally records shared-variable writes in the support
	// of viewI and commit-block delimiters: everything view refinement
	// checking needs (Section 5.1).
	LevelView
)

// String returns the name of the level.
func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelIO:
		return "io"
	case LevelView:
		return "view"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// DefaultSegmentSize is the number of entries per storage segment.
const DefaultSegmentSize = 1024

// Options tunes the log's storage pipeline. The zero value gives an
// unbounded log with DefaultSegmentSize segments and no truncation, which
// preserves the semantics callers of New expect.
type Options struct {
	// SegmentSize is the number of entries per segment; 0 means
	// DefaultSegmentSize. Truncation and retention accounting work at
	// segment granularity.
	SegmentSize int

	// Truncate releases segments once every registered reader (cursors and
	// the sink) has consumed them. Snapshot then returns only the retained
	// suffix; offline checking of a truncated log is not meaningful, so
	// enable truncation only for online pipelines. With no reader registered
	// every segment is vacuously consumed, so the log keeps only the newest
	// segments and discards the rest — attach the checker or sink before
	// appending, or the prefix is gone. (BenchmarkAppendParallel uses this
	// reader-free mode deliberately, to measure the append path alone at
	// bounded memory.)
	Truncate bool

	// Window, when > 0, bounds the number of entries retained ahead of the
	// slowest registered reader: appenders block once the log is Window
	// entries ahead. Implies Truncate. With no reader registered (no cursor,
	// no sink) there is nothing to be ahead of and the window does not
	// engage; with one, an active reader is required for appenders to make
	// progress. This is the backpressure that keeps peak memory at
	// O(Window) under sustained load.
	Window int

	// SyncEvery is the sync-marker cadence of the attached encoder sink:
	// after every SyncEvery entries the sink writes a sync marker frame,
	// flushes its buffer, and — when the underlying writer supports it —
	// fsyncs, bounding how much a crash can lose. 0 means DefaultSyncEvery;
	// < 0 disables periodic sync points (a single marker still terminates
	// the stream on Flush). The cadence is counted in entries, so a log's
	// byte stream stays a deterministic function of its entries regardless
	// of writer timing.
	SyncEvery int

	// FailStop makes Append panic once the attached sink has latched a
	// write error, instead of letting producers keep appending entries
	// that will never be persisted. Recording-for-offline runs want this
	// (a log that cannot reach disk is worthless); online pipelines where
	// the sink is an auxiliary tap keep the default and poll SinkErr.
	FailStop bool

	// SinkCodec selects the persisted encoding of the attached encoder
	// sink. The zero value is CodecBinary, the current checksummed framing
	// (format version 3); CodecBinaryV2 writes the pre-checksum framing,
	// kept for A/B-measuring the checksum overhead and regenerating
	// version-2 artifacts.
	SinkCodec event.Codec

	// Shards, when > 1, selects the sharded per-core capture pipeline
	// (Open returns a *ShardedLog): producers append to per-shard segment
	// chains with batched sequence reservation instead of contending on
	// one global counter, and the checker consumes a deterministic k-way
	// merge. Window is then a global budget split across the shards, and
	// SegmentSize applies per shard. 0 or 1 keeps the single-counter Log.
	Shards int

	// ShardBatch is the number of capture sequence numbers a shard
	// reserves from the global counter per refill (sharded capture only);
	// 0 means DefaultShardBatch. Larger batches amortize the only shared
	// atomic further; the merge is insensitive to the batch size.
	ShardBatch int

	// Tickets forces a sharded log into per-entry global ticket ordering
	// (the same mode a coarse host clock degrades to): the merge key is
	// one strictly increasing counter per log, so the merged order is
	// exactly the append order. Timestamp keys order appends by the
	// instrumented program's lock handoffs, which is correct for live
	// concurrent capture but not for a single goroutine ingesting an
	// already-ordered stream — there the causal order is the stream
	// position, and back-to-back appends routed to different shards can
	// land in one clock tick and be merge-swapped by their unordered
	// batch-reserved seqs. The remote server's per-session logs and
	// online replay set this; the per-entry RMW is uncontended under a
	// single producer. No effect when Shards <= 1.
	Tickets bool
}

// DefaultSyncEvery is the default sync-marker cadence, in entries.
const DefaultSyncEvery = 1024

// slotData pairs an entry with its publication flag. It is padded out to a
// whole number of cache lines (slot) so that producers publishing adjacent
// sequence numbers never store into the same line: with a packed flag array
// (64 flags per line) every publication invalidated the line every other
// producer and the reader were using, which inverted the parallel-append
// scaling this layout exists to provide.
type slotData struct {
	// pub is the sequence number published into this slot, 0 while empty.
	// Using the sequence number rather than a boolean as the publication
	// flag means a recycled segment needs no O(SegmentSize) flag reset
	// under the mutex (a stale sequence never matches the one a reader or
	// the next producer expects), so segment turnover stays O(1).
	pub atomic.Int64
	// ts is the capture timestamp of a sharded append (the k-way merge
	// key; see shard.go), 0 on single-counter logs. Written before pub is
	// stored and read only after pub matches, so it needs no atomic of
	// its own.
	ts int64
	e  event.Entry
}

type slot struct {
	slotData
	_ [(unsafe.Sizeof(slotData{})+63)/64*64 - unsafe.Sizeof(slotData{})]byte
}

// segment is one fixed-size chunk of the log. Slots are written exactly
// once by the reserving producer and become visible when the slot's pub
// field holds the expected sequence number; after that they are immutable
// for as long as the segment is reachable, so readers holding a pinned
// segment pointer can keep reading it even after the log has released it.
//
// Truncated segments with no pins are recycled through a bounded free list:
// a windowed pipeline turns over thousands of segments per second, and
// allocating each one fresh makes the allocator and the garbage collector
// (zeroing, sweeping, heap locks) the dominant cost of the append path.
type segment struct {
	index int64 // segment number; holds seqs [index*size+1, (index+1)*size]
	slots []slot
	// pins counts Snapshot readers holding this segment outside the mutex;
	// guarded by Log.mu. A pinned segment is never recycled.
	pins int
}

// freeListCap bounds the recycled-segment stack.
const freeListCap = 32

// Stats is a point-in-time snapshot of the log's counters. The JSON tags
// are the serialization shared by every machine-readable surface that
// reports pipeline counters (vyrdbench -json snapshots, the vyrdd /metrics
// endpoint).
type Stats struct {
	// Appends is the number of entries appended (equals the highest
	// reserved sequence number).
	Appends int64 `json:"appends"`
	// BlockedWaits counts reader parks (cursor, sink or snapshot waiting
	// for an unpublished entry) and producer backpressure waits.
	BlockedWaits int64 `json:"blocked_waits"`
	// RetainedSegments and RetainedEntries describe current memory: the
	// segments the log still references and the entry capacity they hold.
	RetainedSegments int64 `json:"retained_segments"`
	RetainedEntries  int64 `json:"retained_entries"`
	// PeakRetainedEntries is the largest retained-entry count observed.
	PeakRetainedEntries int64 `json:"peak_retained_entries"`
	// TruncatedSegments and TruncatedEntries count storage released by
	// consumed-prefix truncation.
	TruncatedSegments int64 `json:"truncated_segments"`
	TruncatedEntries  int64 `json:"truncated_entries"`
	// SinkQueueDepth is the number of appended entries the async sink has
	// not yet encoded (0 when no sink is attached).
	SinkQueueDepth int64 `json:"sink_queue_depth"`
	// MaxVerifierLag is the largest gap observed between the newest
	// appended entry and a cursor consuming one.
	MaxVerifierLag int64 `json:"max_verifier_lag"`
	// Shards is the shard count of a sharded capture log (0 for a
	// single-counter Log); MergeWaits counts the k-way merge's poll
	// sleeps while no entry could be proven next.
	Shards     int64 `json:"shards,omitempty"`
	MergeWaits int64 `json:"merge_waits,omitempty"`
}

// String renders the stats in one line for the benchmark tables.
func (s Stats) String() string {
	line := fmt.Sprintf(
		"appends=%d blocked-waits=%d retained=%d/%dseg peak-retained=%d truncated=%dseg/%dent sink-queue=%d max-lag=%d",
		s.Appends, s.BlockedWaits, s.RetainedEntries, s.RetainedSegments,
		s.PeakRetainedEntries, s.TruncatedSegments, s.TruncatedEntries,
		s.SinkQueueDepth, s.MaxVerifierLag)
	if s.Shards > 0 {
		line += fmt.Sprintf(" shards=%d merge-waits=%d", s.Shards, s.MergeWaits)
	}
	return line
}

// padded wraps an atomic counter in its own cache line. The hot-path stats
// counters live in these slots: maxLag and peakRetained are stored by the
// reader side, blockedWaits by whichever side parks — packing them next to
// the producers' reservation line (as the pre-sharding layout did) made
// every metrics update invalidate the line every Append loads, quietly
// reintroducing the shared-line bounce the sharded capture exists to
// remove. Aggregation happens on Stats() reads, never in the hot path.
type padded struct {
	v atomic.Int64
	_ [64 - 8]byte
}

// Log is the shared execution log. The zero value is not usable; construct
// with New or NewWithOptions. It is both a complete single-counter log
// (the strict-total-order capture the paper describes) and the per-shard
// storage engine of ShardedLog.
type Log struct {
	level Level
	opts  Options

	nextTid atomic.Int32
	closed  atomic.Bool
	_       [64 - 8]byte

	// reserved is the last sequence number handed to a producer; the
	// append counter of Stats. Producer-hot: padded so reader-side stores
	// (stats, wait registration) never invalidate its line.
	reserved atomic.Int64
	_        [64 - 8]byte

	// tail caches the newest segment for the append fast path.
	tail atomic.Pointer[segment]
	_    [64 - 8]byte

	// minWait, when non-zero, is the smallest sequence number a parked
	// reader is waiting for; producers publishing at or past it take the
	// mutex and broadcast. prodWait flags parked producers (backpressure).
	minWait  atomic.Int64
	prodWait atomic.Bool

	// wakeStride batches backpressure wakeups: with producers parked, the
	// readers refresh minReader (and broadcast) every wakeStride consumed
	// entries rather than on each one. 0 when Window is off.
	wakeStride int64

	// minReader caches the slowest registered reader position, maintained
	// only when Window backpressure is enabled.
	minReader atomic.Int64
	_         [64 - 8]byte

	mu   sync.Mutex
	cond *sync.Cond
	// segs indexes retained segments; firstSeg is the lowest retained
	// segment number (segments below it have been truncated).
	segs     map[int64]*segment
	firstSeg int64
	free     []*segment
	cursors  []*Cursor
	sink     *sink

	blockedWaits  padded
	truncatedSegs padded
	maxLag        padded
	peakRetained  padded

	// sinkBroken mirrors "the sink has latched an error" as a lone flag so
	// the FailStop check on the append fast path is one relaxed load, not
	// a mutex acquisition.
	sinkBroken atomic.Bool
}

// New returns an empty log recording at the given level, with default
// storage options (unbounded, no truncation).
func New(level Level) *Log { return NewWithOptions(level, Options{}) }

// NewWithOptions returns an empty log with explicit storage options.
func NewWithOptions(level Level, opts Options) *Log {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.Window > 0 {
		opts.Truncate = true
	}
	l := &Log{level: level, opts: opts, segs: make(map[int64]*segment)}
	// Wake parked producers in batches of an eighth of the window: waking
	// them on every consumed entry would have the reader taking the mutex
	// and broadcasting at entry rate whenever the window is full, which
	// serializes the whole pipeline on the lock.
	if opts.Window > 0 {
		l.wakeStride = int64(opts.Window / 8)
		if l.wakeStride < 1 {
			l.wakeStride = 1
		}
		if s := int64(opts.SegmentSize); l.wakeStride > s {
			l.wakeStride = s
		}
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Level reports the recording level the log was created with.
func (l *Log) Level() Level { return l.level }

// NewTid allocates a fresh thread identifier. Each goroutine that performs
// logged actions must use its own identifier (its own Probe).
func (l *Log) NewTid() int32 { return l.nextTid.Add(1) }

// Append adds an entry to the log, assigning and returning its sequence
// number. Safe for concurrent use. Appending to a closed log panics: it
// indicates the harness tore down the log while workers were still running.
func (l *Log) Append(e event.Entry) int64 {
	l.appendGate()
	pos := l.reserved.Add(1)
	e.Seq = pos
	l.publish(pos, 0, e)
	return pos
}

// appendGate performs the pre-reservation admission checks of an append:
// closed-log and fail-stop panics, and the Window backpressure wait. It is
// split from the slot work so the sharded capture path can run the gate
// before taking its shard lock — a producer must never park on the window
// while holding the lock the merge cursor's watermark protocol try-locks.
func (l *Log) appendGate() {
	if l.closed.Load() {
		panic("wal: append to closed log")
	}
	if l.opts.FailStop && l.sinkBroken.Load() {
		panic(fmt.Sprintf("wal: fail-stop: sink error: %v", l.SinkErr()))
	}
	if l.opts.Window > 0 {
		l.waitWindow()
		if l.closed.Load() {
			panic("wal: append to closed log")
		}
	}
}

// appendStamped appends an entry that already carries its capture identity:
// e.Seq is preserved (a batch-reserved capture sequence number, not this
// log's local position) and ts is stored alongside the entry as the k-way
// merge key. The local slot position it returns orders entries within this
// log only. Callers run appendGate themselves, before any shard locking.
func (l *Log) appendStamped(e event.Entry, ts int64) int64 {
	pos := l.reserved.Add(1)
	l.publish(pos, ts, e)
	return pos
}

// publish stores the entry into the slot its local position selects and
// wakes a parked reader if one is waiting for it. The publication order —
// slot store, then pub store, then the minWait load — pairs with park's
// register-then-recheck order so wakeups are never lost; this holds
// per-shard under sharded capture, where each shard is its own Log with
// its own minWait/cond pair (the wake protocol needs no shard awareness
// because no waiter ever spans two shards).
func (l *Log) publish(pos, ts int64, e event.Entry) {
	size := int64(l.opts.SegmentSize)
	idx := (pos - 1) / size
	off := (pos - 1) % size
	seg := l.segmentForAppend(idx)
	sl := &seg.slots[off]
	sl.e = e
	sl.ts = ts
	sl.pub.Store(pos)
	// Wake a parked reader iff one is waiting for this entry (or an
	// earlier one another producer is about to publish; spurious wakeups
	// are harmless, lost wakeups are prevented by the registration order:
	// readers register minWait before re-checking the slot).
	if w := l.minWait.Load(); w != 0 && w <= pos {
		l.mu.Lock()
		l.minWait.Store(0)
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// waitWindow blocks the producer while the log is Window entries ahead of
// the slowest registered reader. The fast path trusts the cached minReader;
// before actually parking, the min is recomputed under the mutex — readers
// only refresh the cache at segment granularity, so the cached value may be
// stale enough to park a producer the window would in fact admit.
func (l *Log) waitWindow() {
	win := int64(l.opts.Window)
	if l.reserved.Load()-l.minReader.Load() < win {
		return
	}
	l.mu.Lock()
	for l.reserved.Load()-l.recomputeMinLocked() >= win && !l.closed.Load() {
		l.prodWait.Store(true)
		l.blockedWaits.v.Add(1)
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// recomputeMinLocked refreshes the cached slowest-reader position. Callers
// must hold l.mu.
func (l *Log) recomputeMinLocked() int64 {
	min := l.reserved.Load()
	for _, c := range l.cursors {
		if p := c.pos.Load(); p < min {
			min = p
		}
	}
	if l.sink != nil {
		if p := l.sink.pos.Load(); p < min {
			min = p
		}
	}
	l.minReader.Store(min)
	return min
}

// segmentForAppend returns the segment with the given index, creating it
// (and updating the tail cache) if needed.
func (l *Log) segmentForAppend(idx int64) *segment {
	if seg := l.tail.Load(); seg != nil && seg.index == idx {
		return seg
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seg, ok := l.segs[idx]; ok {
		return seg
	}
	if idx < l.firstSeg {
		// The segment was already truncated (possible only in the
		// no-registered-reader discard mode, where min runs at the
		// reservation count). Hand the producer a throwaway segment so its
		// store lands somewhere harmless; the entry is discarded, which is
		// what truncation of its position means.
		return &segment{index: idx, slots: make([]slot, l.opts.SegmentSize)}
	}
	var seg *segment
	if n := len(l.free); n > 0 {
		// No slot reset needed: stale pub values never match the sequence
		// numbers this segment's readers and writers will use.
		seg = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		seg.index = idx
	} else {
		seg = &segment{index: idx, slots: make([]slot, l.opts.SegmentSize)}
	}
	l.segs[idx] = seg
	if t := l.tail.Load(); t == nil || t.index < idx {
		l.tail.Store(seg)
	}
	if retained := int64(len(l.segs)) * int64(l.opts.SegmentSize); retained > l.peakRetained.v.Load() {
		l.peakRetained.v.Store(retained)
	}
	if l.opts.Truncate {
		// Drive truncation from the append side too (once per segment, with
		// the mutex already held): a log with no registered readers would
		// otherwise never release anything, and a reader-driven pipeline gets
		// a second chance to release storage the reader has since passed.
		l.truncateLocked(l.recomputeMinLocked())
	}
	return seg
}

// segmentFor returns the retained segment with the given index, or nil if
// it does not exist yet or has been truncated.
func (l *Log) segmentFor(idx int64) *segment {
	if seg := l.tail.Load(); seg != nil && seg.index == idx {
		return seg
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[idx]
}

// read returns the entry with sequence number seq if it is published.
func (l *Log) read(seg *segment, seq int64) (event.Entry, bool) {
	off := (seq - 1) % int64(l.opts.SegmentSize)
	sl := &seg.slots[off]
	if sl.pub.Load() != seq {
		return event.Entry{}, false
	}
	return sl.e, true
}

// readTS is read returning the capture timestamp too (sharded merge key).
func (l *Log) readTS(seg *segment, seq int64) (event.Entry, int64, bool) {
	off := (seq - 1) % int64(l.opts.SegmentSize)
	sl := &seg.slots[off]
	if sl.pub.Load() != seq {
		return event.Entry{}, 0, false
	}
	return sl.e, sl.ts, true
}

// readerSpins is how many times a reader yields and re-polls an unpublished
// entry before parking on the condition variable. A reader that keeps pace
// with the producers would otherwise park after every entry, and each park
// forces the next Append through the mutex-and-broadcast wake path —
// serializing the producers on the very lock the segmented design removes.
const readerSpins = 64

// await blocks until the entry with sequence number seq is published or the
// closed log can never produce it. The second return is false at end of log.
func (l *Log) await(seq int64) (event.Entry, bool) {
	size := int64(l.opts.SegmentSize)
	idx := (seq - 1) / size
	spins := 0
	for {
		if seg := l.segmentFor(idx); seg != nil {
			if e, ok := l.read(seg, seq); ok {
				return e, true
			}
		}
		if l.closed.Load() && seq > l.reserved.Load() {
			return event.Entry{}, false
		}
		if spins < readerSpins {
			spins++
			runtime.Gosched()
			continue
		}
		l.park(seq, idx)
	}
}

// park blocks the calling reader until the entry with sequence number seq
// may have been published. The registration order (store minWait, then
// re-check the slot under the mutex) pairs with Append's
// publish-then-load-minWait order so wakeups are never lost.
func (l *Log) park(seq, idx int64) {
	l.mu.Lock()
	if w := l.minWait.Load(); w == 0 || seq < w {
		l.minWait.Store(seq)
	}
	if seg := l.segs[idx]; seg != nil {
		off := (seq - 1) % int64(l.opts.SegmentSize)
		if seg.slots[off].pub.Load() == seq {
			l.mu.Unlock()
			return
		}
	}
	if l.closed.Load() {
		l.mu.Unlock()
		return
	}
	l.blockedWaits.v.Add(1)
	l.cond.Wait()
	l.mu.Unlock()
}

// Len reports the number of entries appended so far.
func (l *Log) Len() int { return int(l.reserved.Load()) }

// Snapshot returns a copy of the retained entries appended so far, for
// offline checking of a completed (or quiesced) execution. Without
// truncation this is the whole log from sequence 1; with truncation it is
// the suffix starting at the oldest retained segment. The snapshot is the
// contiguous published prefix: entries whose append is still in flight end
// it early (they are not yet part of the log).
func (l *Log) Snapshot() []event.Entry {
	tes := l.snapshotTS()
	out := make([]event.Entry, len(tes))
	for i, te := range tes {
		out[i] = te.e
	}
	return out
}

// snapshotTS is Snapshot carrying each entry's capture timestamp (zero on
// single-counter appends) — the per-shard half of ShardedLog.Snapshot's
// offline merge.
func (l *Log) snapshotTS() []tsEntry {
	n := l.reserved.Load()
	size := int64(l.opts.SegmentSize)
	l.mu.Lock()
	start := l.firstSeg*size + 1
	// Pin the retained segments: a pinned segment is immutable (never
	// recycled), so the copy below is safe even if truncation releases it
	// mid-read.
	pinned := make(map[int64]*segment, len(l.segs))
	for idx, s := range l.segs {
		s.pins++
		pinned[idx] = s
	}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		for _, s := range pinned {
			s.pins--
		}
		l.mu.Unlock()
	}()
	if start > n {
		return nil
	}
	out := make([]tsEntry, 0, n-start+1)
	for seq := start; seq <= n; seq++ {
		idx := (seq - 1) / size
		seg := pinned[idx]
		for spin := 0; seg == nil && spin < snapshotSpins; spin++ {
			// The producer that reserved seq has not allocated its segment
			// yet; the gap between reservation and publication is tiny.
			runtime.Gosched()
			seg = l.pinSegment(idx)
		}
		if seg == nil {
			break
		}
		pinned[idx] = seg
		e, ts, ok := l.readTS(seg, seq)
		for spin := 0; !ok && spin < snapshotSpins; spin++ {
			runtime.Gosched()
			e, ts, ok = l.readTS(seg, seq)
		}
		if !ok {
			break
		}
		out = append(out, tsEntry{ts: ts, e: e})
	}
	return out
}

// pinSegment returns the retained segment with the given index pinned
// against recycling, or nil. The caller owns one pin per non-nil return.
func (l *Log) pinSegment(idx int64) *segment {
	l.mu.Lock()
	defer l.mu.Unlock()
	seg := l.segs[idx]
	if seg != nil {
		seg.pins++
	}
	return seg
}

// snapshotSpins bounds how long Snapshot waits for an in-flight append to
// publish before ending the snapshot at the gap.
const snapshotSpins = 10_000

// Close marks the log complete, waits for the attached sink (if any) to
// drain and flush, and releases parked readers. Cursors observe end-of-log
// once they have consumed every entry. Closing twice is a no-op.
func (l *Log) Close() {
	l.closed.Store(true)
	l.mu.Lock()
	l.minWait.Store(0)
	l.cond.Broadcast()
	s := l.sink
	l.mu.Unlock()
	if s != nil {
		s.wg.Wait()
	}
}

// Closed reports whether Close has been called.
func (l *Log) Closed() bool { return l.closed.Load() }

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	retainedSegs := int64(len(l.segs))
	s := l.sink
	l.mu.Unlock()
	size := int64(l.opts.SegmentSize)
	st := Stats{
		Appends:             l.reserved.Load(),
		BlockedWaits:        l.blockedWaits.v.Load(),
		RetainedSegments:    retainedSegs,
		RetainedEntries:     retainedSegs * size,
		PeakRetainedEntries: l.peakRetained.v.Load(),
		TruncatedSegments:   l.truncatedSegs.v.Load(),
		TruncatedEntries:    l.truncatedEntryCount(),
		MaxVerifierLag:      l.maxLag.v.Load(),
	}
	if s != nil {
		if d := st.Appends - s.pos.Load(); d > 0 {
			st.SinkQueueDepth = d
		}
	}
	return st
}

// truncatedEntryCount reports how many entries truncation has released
// (truncation works at whole-segment granularity). It is the positional
// base a retained-suffix snapshot's numbering resumes from.
func (l *Log) truncatedEntryCount() int64 {
	return l.truncatedSegs.v.Load() * int64(l.opts.SegmentSize)
}

// advanceReaders recomputes the slowest-reader position and, at segment
// granularity, releases fully consumed segments (when truncation is on) and
// wakes producers blocked on the window.
func (l *Log) advanceReaders() {
	l.mu.Lock()
	min := l.recomputeMinLocked()
	if l.opts.Truncate {
		l.truncateLocked(min)
	}
	if l.prodWait.Load() {
		l.prodWait.Store(false)
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// truncateLocked releases segments wholly below min. Callers must hold l.mu.
//
// With at least one registered reader, min is the slowest reader position
// and released segments were fully consumed. With none, min is the
// reservation count: every reservation is trivially "consumed", and the log
// degrades to a bounded recent-suffix buffer — Snapshot and late cursors see
// only what is still retained. In that mode a producer may still be
// publishing into a released segment (it reserved a slot but has not stored
// the entry yet), so a segment is recycled only once every slot is
// observably published; otherwise it is left for the garbage collector,
// where a late store into it is harmless because nothing reads it.
func (l *Log) truncateLocked(min int64) {
	size := int64(l.opts.SegmentSize)
	// Track the peak before releasing anything: retention grows
	// monotonically between truncations, so this observes the true peak
	// without touching the append fast path.
	if retained := int64(len(l.segs)) * size; retained > l.peakRetained.v.Load() {
		l.peakRetained.v.Store(retained)
	}
	for (l.firstSeg+1)*size <= min {
		if seg, ok := l.segs[l.firstSeg]; ok {
			delete(l.segs, l.firstSeg)
			l.truncatedSegs.v.Add(1)
			if l.tail.Load() == seg {
				// The lock-free fast paths reach segments through the tail
				// cache without the mutex; a segment on the free list must
				// not stay reachable that way, or its reinitialization
				// races with those reads.
				l.tail.Store(nil)
			}
			if seg.pins == 0 && len(l.free) < freeListCap && fullyPublished(seg, size) {
				l.free = append(l.free, seg)
			}
		}
		l.firstSeg++
	}
}

// fullyPublished reports whether every slot of the segment holds its own
// entry. Observing every expected sequence number means every producer that
// reserved a slot here has completed its store, so the segment can be
// reused without racing a late publication.
func fullyPublished(seg *segment, size int64) bool {
	base := seg.index * size
	for i := range seg.slots {
		if seg.slots[i].pub.Load() != base+int64(i)+1 {
			return false
		}
	}
	return true
}

// SinkErr returns the first error encountered while persisting entries to
// the attached sink, if any. It is final once Close has returned.
func (l *Log) SinkErr() error {
	l.mu.Lock()
	s := l.sink
	l.mu.Unlock()
	if s == nil {
		return nil
	}
	if err, ok := s.err.Load().(error); ok {
		return err
	}
	return nil
}

// EntrySink consumes drained entries on the log's sink goroutine, in log
// order. It is the seam both persistence and remote shipping attach at:
// AttachSink wraps an io.Writer in the codec-encoding sink, and a remote
// client implements EntrySink directly to ship entries off-box. WriteEntry
// may block (a bounded remote buffer under backpressure); blocking stalls
// the sink reader, which in turn engages the log's Window backpressure on
// producers. Flush is called once, after the last entry of the closed log
// has been written, and must complete the stream (flush buffers, deliver
// the final frames).
type EntrySink interface {
	WriteEntry(e event.Entry) error
	Flush() error
}

// SyncWriter is an io.Writer whose buffered contents can be forced to
// stable storage. *os.File and faultfs.File satisfy it; attach targets
// that do (log files) get fsync'd sync points, targets that don't (network
// pipes, in-memory buffers) get markers and flushes only.
type SyncWriter interface {
	io.Writer
	Sync() error
}

// encoderSink is the io.Writer-backed EntrySink: entries are encoded with
// the event codec through a bufio.Writer (the analogue of the paper's
// serialized log file). Every SyncEvery entries it writes a sync marker
// frame, flushes, and fsyncs when the writer supports it — the durability
// cadence wal.Recover leans on. The cadence counts entries, never bytes or
// time, so a log's byte stream is a deterministic function of its entries.
type encoderSink struct {
	bw    *bufio.Writer
	enc   *event.Encoder
	sync  SyncWriter // nil when the underlying writer has no Sync
	every int64      // sync-point cadence in entries; <= 0 disables
	n     int64      // entries since the last sync point
	last  int64      // highest sequence number written
}

func (s *encoderSink) WriteEntry(e event.Entry) error {
	if err := s.enc.Encode(e); err != nil {
		return err
	}
	s.last = e.Seq
	if s.every > 0 {
		if s.n++; s.n >= s.every {
			s.n = 0
			return s.syncPoint()
		}
	}
	return nil
}

// syncPoint writes a marker recording the entries so far, pushes them out
// of the bufio buffer, and fsyncs. Flushing here — not just at Close — is
// also what surfaces a broken writer while the run is still going: without
// it a mid-run write error hides in the buffer until the final flush.
func (s *encoderSink) syncPoint() error {
	if err := s.enc.SyncMarker(s.last); err != nil {
		return err
	}
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if s.sync != nil {
		return s.sync.Sync()
	}
	return nil
}

func (s *encoderSink) Flush() error {
	if s.last > 0 {
		return s.syncPoint()
	}
	return s.bw.Flush()
}

// sink drains published entries to an EntrySink on its own goroutine. It
// registers as a reader so truncation never outruns persistence.
type sink struct {
	es  EntrySink
	pos atomic.Int64
	err atomic.Value
	wg  sync.WaitGroup
	// broken, when non-nil, is raised alongside the first latched error
	// (the log's FailStop flag).
	broken *atomic.Bool
}

func (s *sink) fail(err error) {
	if err == nil {
		return
	}
	// Record only the first failure; keep draining so truncation and
	// backpressure are not wedged by a broken writer.
	if s.err.CompareAndSwap(nil, err) && s.broken != nil {
		s.broken.Store(true)
	}
}

// AttachSink starts persisting appended entries to w using the event codec
// (the analogue of the paper's serialized log file): a dedicated goroutine
// drains the log through a buffered writer and flushes on Close. When w
// implements SyncWriter, sync points (marker + flush + fsync) are taken
// every Options.SyncEvery entries. Entries already in the log (and still
// retained) are written out first so the stream is complete. Attaching a
// second sink is an error.
func (l *Log) AttachSink(w io.Writer) error {
	return l.AttachEntrySink(newEncoderSink(w, l.opts))
}

// newEncoderSink wraps w in the codec-encoding entry sink, honoring the
// codec and sync-marker cadence options. Shared by Log and ShardedLog so
// both backends persist byte-identical streams for the same entries.
func newEncoderSink(w io.Writer, opts Options) *encoderSink {
	bw := bufio.NewWriter(w)
	es := &encoderSink{bw: bw, enc: event.NewEncoderCodec(bw, opts.SinkCodec)}
	if sw, ok := w.(SyncWriter); ok {
		es.sync = sw
	}
	switch {
	case opts.SyncEvery > 0:
		es.every = int64(opts.SyncEvery)
	case opts.SyncEvery == 0:
		es.every = DefaultSyncEvery
	}
	return es
}

// AttachEntrySink starts draining appended entries into es on a dedicated
// goroutine, in log order; Close waits for the drain and for es.Flush.
// Entries already in the log (and still retained) are delivered first so
// the stream is complete. Attaching a second sink is an error.
func (l *Log) AttachEntrySink(es EntrySink) error {
	s := &sink{es: es, broken: &l.sinkBroken}
	l.mu.Lock()
	if l.sink != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: sink already attached")
	}
	s.pos.Store(l.firstSeg * int64(l.opts.SegmentSize))
	l.sink = s
	l.mu.Unlock()
	s.wg.Add(1)
	go l.runSink(s)
	return nil
}

// runSink is the sink goroutine: drain published entries in order, hand
// them to the entry sink (unless a previous write failed), and flush at end
// of log.
func (l *Log) runSink(s *sink) {
	defer s.wg.Done()
	for {
		seq := s.pos.Load() + 1
		e, ok := l.await(seq)
		if !ok {
			break
		}
		if s.err.Load() == nil {
			s.fail(s.es.WriteEntry(e))
		}
		s.pos.Store(seq)
		if l.opts.Truncate && (seq%int64(l.opts.SegmentSize) == 0 ||
			(l.prodWait.Load() && seq%l.wakeStride == 0)) {
			l.advanceReaders()
		}
	}
	if s.err.Load() == nil {
		s.fail(s.es.Flush())
	}
}

// Cursor reads the log in order. A cursor is owned by a single goroutine
// (the verification thread). Cursors register with the log: with truncation
// enabled, storage is only released once every cursor has passed it.
type Cursor struct {
	log *Log
	pos atomic.Int64 // sequence number of the last consumed entry
	seg *segment     // cached segment containing pos+1
}

// Cursor returns a new cursor positioned at the oldest retained entry (the
// start of the log unless truncation has already released a prefix).
func (l *Log) Cursor() *Cursor {
	c := &Cursor{log: l}
	l.mu.Lock()
	c.pos.Store(l.firstSeg * int64(l.opts.SegmentSize))
	l.cursors = append(l.cursors, c)
	l.mu.Unlock()
	return c
}

// fetch returns the published entry with sequence number seq, consulting
// the cursor's cached segment first.
func (c *Cursor) fetch(seq int64) (event.Entry, bool) {
	size := int64(c.log.opts.SegmentSize)
	idx := (seq - 1) / size
	if c.seg == nil || c.seg.index != idx {
		seg := c.log.segmentFor(idx)
		if seg == nil {
			return event.Entry{}, false
		}
		c.seg = seg
	}
	return c.log.read(c.seg, seq)
}

// advance records consumption of seq and maintains lag/truncation state.
// Truncation and window bookkeeping run at segment granularity — or on
// every entry while a producer is parked on backpressure, so wakeups are
// prompt even when Window < SegmentSize. Doing it per entry in the steady
// state would have the reader invalidating the producers' cached minReader
// line (and taking the mutex) millions of times a second.
func (c *Cursor) advance(seq int64) {
	c.pos.Store(seq)
	atBoundary := seq%int64(c.log.opts.SegmentSize) == 0
	if atBoundary {
		// Drop the segment cache at the boundary: once pos passes a segment
		// it becomes eligible for truncation and recycling, and a recycled
		// segment must never be reachable through a stale cursor cache.
		c.seg = nil
	}
	if atBoundary || seq == 1 {
		// Sample verifier lag at segment granularity: loading reserved on
		// every consume keeps pulling the producers' reservation line into
		// shared state, which taxes every concurrent Append.
		if lag := c.log.reserved.Load() - seq; lag > c.log.maxLag.v.Load() {
			c.log.maxLag.v.Store(lag)
		}
	}
	if !c.log.opts.Truncate {
		return
	}
	if atBoundary || (c.log.prodWait.Load() && seq%c.log.wakeStride == 0) {
		c.log.advanceReaders()
	}
}

// TryNext returns the next entry without blocking. ok is false if no entry
// is available yet (or ever, if the log is closed and drained).
func (c *Cursor) TryNext() (e event.Entry, ok bool) {
	seq := c.pos.Load() + 1
	e, ok = c.fetch(seq)
	if !ok {
		return event.Entry{}, false
	}
	c.advance(seq)
	return e, true
}

// peek returns the next entry and its capture timestamp without consuming
// it; consume advances past it. The pair is the head-inspection surface
// the sharded k-way merge runs on: the merge must compare the heads of
// every shard before it commits to consuming one.
func (c *Cursor) peek() (e event.Entry, ts int64, ok bool) {
	seq := c.pos.Load() + 1
	size := int64(c.log.opts.SegmentSize)
	idx := (seq - 1) / size
	if c.seg == nil || c.seg.index != idx {
		seg := c.log.segmentFor(idx)
		if seg == nil {
			return event.Entry{}, 0, false
		}
		c.seg = seg
	}
	return c.log.readTS(c.seg, seq)
}

// consume advances past the entry a successful peek returned.
func (c *Cursor) consume() { c.advance(c.pos.Load() + 1) }

// drained reports that the cursor's log is closed and fully consumed: no
// entry will ever follow.
func (c *Cursor) drained() bool {
	return c.log.closed.Load() && c.pos.Load() >= c.log.reserved.Load()
}

// Next blocks until an entry is available or the log is closed and fully
// consumed, in which case ok is false. Like await, it spins briefly before
// parking so a fast verifier does not drag every producer into the wake
// path.
func (c *Cursor) Next() (e event.Entry, ok bool) {
	seq := c.pos.Load() + 1
	spins := 0
	for {
		if e, ok = c.fetch(seq); ok {
			c.advance(seq)
			return e, true
		}
		if c.log.closed.Load() && seq > c.log.reserved.Load() {
			return event.Entry{}, false
		}
		if spins < readerSpins {
			spins++
			runtime.Gosched()
			continue
		}
		c.log.park(seq, (seq-1)/int64(c.log.opts.SegmentSize))
	}
}

// Pos reports how many entries the cursor has consumed.
func (c *Cursor) Pos() int { return int(c.pos.Load()) }

// Err reports the first failure of the log the cursor reads — today that is
// the sink's persistence error. A drain loop that only watches Next/TryNext
// would otherwise end a run silently with the log half-persisted; checkers
// surface this in their Report.
func (c *Cursor) Err() error { return c.log.SinkErr() }

// Reader is the total-order read surface of a log: the single-counter
// Log's Cursor and the sharded log's MergeCursor both implement it, so the
// checker pipeline (core.Checker.Run, core.RunChecker, core.Multi.Run, the
// vyrdd session drain) is capture-layout-agnostic. A Reader is owned by a
// single goroutine.
type Reader interface {
	// Next blocks until an entry is available or the log is closed and
	// drained (ok false).
	Next() (e event.Entry, ok bool)
	// TryNext returns the next entry without blocking (ok false when none
	// is available yet).
	TryNext() (e event.Entry, ok bool)
	// Pos reports how many entries this reader has consumed.
	Pos() int
	// Err reports the first failure of the log being read (today: the
	// sink's persistence error).
	Err() error
}

// Appender is the capture surface a probe appends through: the whole Log,
// or one pinned shard of a ShardedLog.
type Appender interface {
	Append(e event.Entry) int64
}

// Backend is the full capture-side surface shared by Log and ShardedLog;
// the vyrd facade and the vyrdd session layer program against it so the
// sharded and single-counter pipelines are interchangeable end to end.
type Backend interface {
	Level() Level
	NewTid() int32
	// AppenderFor returns the append surface for one thread: the log
	// itself for a single-counter Log, the thread's pinned shard for a
	// ShardedLog.
	AppenderFor(tid int32) Appender
	// Append routes an entry by its Tid (AppenderFor(e.Tid) semantics);
	// single-goroutine ingest paths (the vyrdd wire loop) use it.
	Append(e event.Entry) int64
	// Reader returns a fresh registered reader over the total order.
	Reader() Reader
	Snapshot() []event.Entry
	Len() int
	Close()
	Closed() bool
	Stats() Stats
	AttachSink(w io.Writer) error
	AttachEntrySink(es EntrySink) error
	SinkErr() error
}

// AppenderFor returns the log itself: a single-counter log has no shards
// to pin to.
func (l *Log) AppenderFor(tid int32) Appender { return l }

// Reader returns a fresh registered cursor (Backend surface).
func (l *Log) Reader() Reader { return l.Cursor() }

// Open constructs the capture backend the options select: a ShardedLog
// when opts.Shards > 1, the single-counter Log otherwise.
func Open(level Level, opts Options) Backend {
	if opts.Shards > 1 {
		return NewSharded(level, opts)
	}
	return NewWithOptions(level, opts)
}

// ReadFile decodes a persisted log stream (current binary format) into a
// slice of entries, the input to offline checking.
func ReadFile(r io.Reader) ([]event.Entry, error) {
	return event.NewDecoder(r).DecodeAll()
}

// ReadFileCodec decodes a persisted log stream written with the given
// codec; use event.CodecGob for version-1 artifacts.
func ReadFileCodec(r io.Reader, c event.Codec) ([]event.Entry, error) {
	return event.NewDecoderCodec(r, c).DecodeAll()
}

// ReadFileParallel decodes a binary-format stream with a parallel decode
// pool (see event.DecodeAllParallel), preserving log order. workers <= 0
// uses GOMAXPROCS.
func ReadFileParallel(r io.Reader, workers int) ([]event.Entry, error) {
	return event.DecodeAllParallel(r, workers)
}
