// Package wal implements the VYRD execution log (Section 4.2 and 6.1 of the
// paper): a totally ordered, concurrently appended record of the visible
// actions of an instrumented implementation.
//
// Implementation threads append entries as they run; the verification thread
// reads them through a Cursor and performs refinement checking, either
// concurrently with the execution (online) or afterwards from a snapshot or
// a persisted file (offline). To keep log order consistent with the
// execution, instrumented code appends each entry while holding the locks
// that make the logged action visible to other threads, so the sequence
// numbers assigned here coincide with the order the actions take effect.
package wal

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// Level selects how much of the execution is recorded (Section 6.2; Table 2
// measures the cost of each level).
type Level uint8

const (
	// LevelOff disables logging entirely; every probe operation is a no-op.
	// This is the "program alone" baseline of Tables 2 and 3.
	LevelOff Level = iota
	// LevelIO records call, return and commit actions: everything I/O
	// refinement checking needs (Section 4.2).
	LevelIO
	// LevelView additionally records shared-variable writes in the support
	// of viewI and commit-block delimiters: everything view refinement
	// checking needs (Section 5.1).
	LevelView
)

// String returns the name of the level.
func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelIO:
		return "io"
	case LevelView:
		return "view"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Log is the shared execution log. The zero value is not usable; construct
// with New.
type Log struct {
	level Level

	mu      sync.Mutex
	cond    *sync.Cond
	entries []event.Entry
	closed  bool

	nextTid atomic.Int32

	// sink, when non-nil, receives every appended entry (file persistence).
	sink *event.Encoder
	// sinkErr records the first persistence failure; subsequent appends
	// keep the in-memory log usable.
	sinkErr error
}

// New returns an empty log recording at the given level.
func New(level Level) *Log {
	l := &Log{level: level}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Level reports the recording level the log was created with.
func (l *Log) Level() Level { return l.level }

// NewTid allocates a fresh thread identifier. Each goroutine that performs
// logged actions must use its own identifier (its own Probe).
func (l *Log) NewTid() int32 { return l.nextTid.Add(1) }

// Append adds an entry to the log, assigning and returning its sequence
// number. Safe for concurrent use. Appending to a closed log panics: it
// indicates the harness tore down the log while workers were still running.
func (l *Log) Append(e event.Entry) int64 {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		panic("wal: append to closed log")
	}
	e.Seq = int64(len(l.entries)) + 1
	l.entries = append(l.entries, e)
	if l.sink != nil && l.sinkErr == nil {
		l.sinkErr = l.sink.Encode(e)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return e.Seq
}

// Len reports the number of entries appended so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Snapshot returns a copy of the entries appended so far, for offline
// checking of a completed (or quiesced) execution.
func (l *Log) Snapshot() []event.Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]event.Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Close marks the log complete. Cursors observe end-of-log once they have
// consumed every entry. Closing twice is a no-op.
func (l *Log) Close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Closed reports whether Close has been called.
func (l *Log) Closed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// SinkErr returns the first error encountered while persisting entries to
// the attached sink, if any.
func (l *Log) SinkErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}

// AttachSink starts persisting every subsequently appended entry to w using
// the event codec (the analogue of the paper's serialized log file). Entries
// already in the log are written out first so the stream is complete.
func (l *Log) AttachSink(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	enc := event.NewEncoder(w)
	for _, e := range l.entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	l.sink = enc
	return nil
}

// Cursor reads the log in order. A cursor is owned by a single goroutine
// (the verification thread).
type Cursor struct {
	log *Log
	pos int
}

// Cursor returns a new cursor positioned at the start of the log.
func (l *Log) Cursor() *Cursor { return &Cursor{log: l} }

// TryNext returns the next entry without blocking. ok is false if no entry
// is available yet (or ever, if the log is closed and drained).
func (c *Cursor) TryNext() (e event.Entry, ok bool) {
	c.log.mu.Lock()
	defer c.log.mu.Unlock()
	if c.pos < len(c.log.entries) {
		e = c.log.entries[c.pos]
		c.pos++
		return e, true
	}
	return event.Entry{}, false
}

// Next blocks until an entry is available or the log is closed and fully
// consumed, in which case ok is false.
func (c *Cursor) Next() (e event.Entry, ok bool) {
	c.log.mu.Lock()
	defer c.log.mu.Unlock()
	for c.pos >= len(c.log.entries) {
		if c.log.closed {
			return event.Entry{}, false
		}
		c.log.cond.Wait()
	}
	e = c.log.entries[c.pos]
	c.pos++
	return e, true
}

// Pos reports how many entries the cursor has consumed.
func (c *Cursor) Pos() int { return c.pos }

// ReadFile decodes a persisted log stream into a slice of entries, the
// input to offline checking.
func ReadFile(r io.Reader) ([]event.Entry, error) {
	return event.NewDecoder(r).DecodeAll()
}
