package wal

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
)

// ctrEntry is a write entry carrying a counter value, used by the ordering
// tests to relate log order to the order a shared lock was acquired in.
func ctrEntry(tid int32, n int) event.Entry {
	return event.Entry{Tid: tid, Kind: event.KindWrite, Method: "ctr", Args: []event.Value{n}}
}

// TestConcurrentAppendMatchesLockOrder is the core soundness property of the
// lock-free append path: entries appended while holding a shared lock appear
// in the log in exactly the order the lock was acquired. Producers increment
// a counter and append its value under one mutex (the way instrumented code
// logs an action while holding the locks that make it visible); a concurrent
// cursor — running under window backpressure and truncation — must observe
// dense sequence numbers 1..N carrying counter values 1..N.
func TestConcurrentAppendMatchesLockOrder(t *testing.T) {
	l := NewWithOptions(LevelView, Options{SegmentSize: 64, Window: 256})
	const producers = 8
	const perP = 2000
	const total = producers * perP

	done := make(chan error, 1)
	cur := l.Cursor()
	go func() {
		var prevSeq int64
		prevCtr := 0
		for {
			e, ok := cur.Next()
			if !ok {
				if prevSeq != total {
					done <- fmt.Errorf("cursor ended after %d entries, want %d", prevSeq, total)
					return
				}
				done <- nil
				return
			}
			if e.Seq != prevSeq+1 {
				done <- fmt.Errorf("sequence hole: %d after %d", e.Seq, prevSeq)
				return
			}
			ctr := event.MustInt(e.Args[0])
			if ctr != prevCtr+1 {
				done <- fmt.Errorf("entry #%d carries counter %d after %d: log order diverged from lock order", e.Seq, ctr, prevCtr)
				return
			}
			prevSeq, prevCtr = e.Seq, ctr
		}
	}()

	var mu sync.Mutex
	ctr := 0
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		tid := l.NewTid()
		go func() {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				mu.Lock()
				ctr++
				l.Append(ctrEntry(tid, ctr))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	l.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Appends; got != total {
		t.Fatalf("stats report %d appends, want %d", got, total)
	}
}

// TestTruncationBoundsRetainedMemory is the bounded-memory acceptance check:
// a long windowed run retains O(Window) entries, not O(execution). The peak
// can exceed Window by at most two segments (the partially consumed head and
// the partially filled tail).
func TestTruncationBoundsRetainedMemory(t *testing.T) {
	const (
		segSize = 64
		window  = 512
		total   = 50_000
	)
	l := NewWithOptions(LevelView, Options{SegmentSize: segSize, Window: window})
	cur := l.Cursor()
	done := make(chan int64, 1)
	go func() {
		var n int64
		for {
			if _, ok := cur.Next(); !ok {
				done <- n
				return
			}
			n++
		}
	}()
	tid := l.NewTid()
	for i := 1; i <= total; i++ {
		l.Append(ctrEntry(tid, i))
	}
	l.Close()
	if n := <-done; n != total {
		t.Fatalf("cursor consumed %d entries, want %d", n, total)
	}

	st := l.Stats()
	if bound := int64(window + 2*segSize); st.PeakRetainedEntries > bound {
		t.Fatalf("peak retained %d entries exceeds window bound %d (stats: %s)", st.PeakRetainedEntries, bound, st)
	}
	// With total >> window, truncation must have released most of the log.
	if st.TruncatedSegments < int64(total/segSize)/2 {
		t.Fatalf("expected substantial truncation, got %s", st)
	}
	if st.RetainedEntries > int64(window+2*segSize) {
		t.Fatalf("final retention %d exceeds bound (stats: %s)", st.RetainedEntries, st)
	}
}

// TestSnapshotOfTruncatedLogReturnsRetainedSuffix: after truncation released
// a prefix, Snapshot starts at the oldest retained entry and is contiguous.
func TestSnapshotOfTruncatedLogReturnsRetainedSuffix(t *testing.T) {
	const segSize = 32
	l := NewWithOptions(LevelView, Options{SegmentSize: segSize, Truncate: true})
	cur := l.Cursor()
	tid := l.NewTid()
	const total = 10 * segSize
	for i := 1; i <= total; i++ {
		l.Append(ctrEntry(tid, i))
	}
	// Consume most of the log so truncation can release full segments.
	for i := 0; i < total-segSize/2; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatalf("cursor ended early at %d", i)
		}
	}
	snap := l.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	if snap[0].Seq == 1 {
		t.Fatalf("snapshot still starts at seq 1; truncation released nothing (stats: %s)", l.Stats())
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("snapshot not contiguous: seq %d after %d", snap[i].Seq, snap[i-1].Seq)
		}
	}
	if last := snap[len(snap)-1].Seq; last != total {
		t.Fatalf("snapshot ends at seq %d, want %d", last, total)
	}
	l.Close()
}

// flakyWriter fails every write once failAfter bytes have been accepted, and
// can also be flagged closed, after which every write fails. Short writes
// (n < len(p), err != nil) exercise the bufio error path.
type flakyWriter struct {
	mu        sync.Mutex
	accepted  int
	failAfter int
	closed    bool
}

func (w *flakyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("flaky: write after close")
	}
	if w.accepted+len(p) > w.failAfter {
		n := w.failAfter - w.accepted
		if n < 0 {
			n = 0
		}
		w.accepted += n
		return n, errors.New("flaky: disk full")
	}
	w.accepted += len(p)
	return len(p), nil
}

func (w *flakyWriter) Close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
}

// TestSinkShortWriteSurfacesError: a sink writer that starts short-writing
// mid-stream must surface the first error through SinkErr after Close, and
// the log itself must keep accepting appends (persistence failure does not
// wedge the execution).
func TestSinkShortWriteSurfacesError(t *testing.T) {
	l := NewWithOptions(LevelView, Options{SegmentSize: 16})
	w := &flakyWriter{failAfter: 200}
	if err := l.AttachSink(w); err != nil {
		t.Fatal(err)
	}
	tid := l.NewTid()
	for i := 1; i <= 500; i++ {
		l.Append(ctrEntry(tid, i))
	}
	l.Close()
	err := l.SinkErr()
	if err == nil {
		t.Fatal("sink error not surfaced")
	}
	if got := err.Error(); got == "" || !strings.Contains(got, "disk full") {
		t.Fatalf("unexpected sink error: %v", err)
	}
	if l.Len() != 500 {
		t.Fatalf("appends lost after sink failure: %d", l.Len())
	}
}

// TestSinkWriteAfterCloseSurfacesError: the underlying writer being torn
// down mid-run (every subsequent write rejected) is reported, not swallowed
// by the buffered flush on Close.
func TestSinkWriteAfterCloseSurfacesError(t *testing.T) {
	l := NewWithOptions(LevelView, Options{SegmentSize: 16})
	w := &flakyWriter{failAfter: 1 << 30}
	if err := l.AttachSink(w); err != nil {
		t.Fatal(err)
	}
	w.Close() // torn down before anything is flushed
	tid := l.NewTid()
	for i := 1; i <= 100; i++ {
		l.Append(ctrEntry(tid, i))
	}
	l.Close()
	err := l.SinkErr()
	if err == nil {
		t.Fatal("write-after-close not surfaced")
	}
	if !strings.Contains(err.Error(), "write after close") {
		t.Fatalf("unexpected sink error: %v", err)
	}
}

// TestAttachSecondSinkFails: one sink per log.
func TestAttachSecondSinkFails(t *testing.T) {
	l := New(LevelView)
	if err := l.AttachSink(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := l.AttachSink(io.Discard); err == nil {
		t.Fatal("second sink attached")
	}
	l.Close()
}

// TestWindowBackpressureBlocksAndReleases: with a full window and no reader
// progress, Append must block; consuming entries must release it.
func TestWindowBackpressureBlocksAndReleases(t *testing.T) {
	const window = 64
	l := NewWithOptions(LevelView, Options{SegmentSize: 16, Window: window})
	cur := l.Cursor()
	tid := l.NewTid()
	for i := 1; i <= window; i++ {
		l.Append(ctrEntry(tid, i))
	}

	appended := make(chan struct{})
	go func() {
		l.Append(ctrEntry(tid, window+1)) // window full: must block
		close(appended)
	}()
	select {
	case <-appended:
		t.Fatal("append past the window did not block")
	case <-time.After(50 * time.Millisecond):
	}

	// Wakeups are batched: the reader wakes parked producers once it has
	// consumed a wake stride's worth of entries.
	for i := int64(0); i < l.wakeStride; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatal("cursor ended unexpectedly")
		}
	}
	select {
	case <-appended:
	case <-time.After(2 * time.Second):
		t.Fatal("append not released by reader progress")
	}
	if st := l.Stats(); st.BlockedWaits == 0 {
		t.Fatalf("backpressure wait not counted: %s", st)
	}
	// Drain and close from the reader side.
	go func() {
		for {
			if _, ok := cur.Next(); !ok {
				return
			}
		}
	}()
	l.Close()
}

// TestCloseUnblocksWindowedProducer: Close must wake a producer parked on
// window backpressure; the append then panics like any append-after-close.
func TestCloseUnblocksWindowedProducer(t *testing.T) {
	const window = 8
	l := NewWithOptions(LevelView, Options{SegmentSize: 8, Window: window})
	l.Cursor() // registered but never reading: the producer stays parked
	tid := l.NewTid()
	for i := 1; i <= window; i++ {
		l.Append(ctrEntry(tid, i))
	}
	unblocked := make(chan any, 1)
	go func() {
		defer func() { unblocked <- recover() }()
		l.Append(ctrEntry(tid, window+1))
	}()
	time.Sleep(20 * time.Millisecond) // let the producer park
	l.Close()
	select {
	case r := <-unblocked:
		if r == nil {
			t.Fatal("append to a closed log succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the parked producer")
	}
}

// TestSinkHoldsTruncation: the async sink registers as a reader, so a slow
// sink — not just a slow cursor — bounds truncation. Nothing the sink has
// not persisted may be released.
func TestSinkHoldsTruncation(t *testing.T) {
	const segSize = 16
	l := NewWithOptions(LevelView, Options{SegmentSize: segSize, Truncate: true})
	var buf safeBuffer
	if err := l.AttachSink(&buf); err != nil {
		t.Fatal(err)
	}
	cur := l.Cursor()
	tid := l.NewTid()
	const total = 20 * segSize
	for i := 1; i <= total; i++ {
		l.Append(ctrEntry(tid, i))
	}
	for i := 0; i < total; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatal("cursor ended early")
		}
	}
	l.Close() // waits for the sink to drain and flush
	if err := l.SinkErr(); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != total {
		t.Fatalf("sink persisted %d entries, want %d (truncation outran persistence?)", len(restored), total)
	}
	for i, e := range restored {
		if e.Seq != int64(i+1) {
			t.Fatalf("persisted stream has hole at index %d: seq %d", i, e.Seq)
		}
	}
}

// safeBuffer is a mutex-guarded bytes buffer: the sink goroutine writes it
// while the test later reads it.
type safeBuffer struct {
	mu  sync.Mutex
	buf []byte
	off int
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *safeBuffer) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.off >= len(b.buf) {
		return 0, io.EOF
	}
	n := copy(p, b.buf[b.off:])
	b.off += n
	return n, nil
}

// BenchmarkAppendParallelMutex is the A/B partner of BenchmarkAppendParallel
// (wal_test.go): the retained single-mutex log under the same append-only
// parallel load. Run both with -cpu 1,4 to see the scaling difference.
func BenchmarkAppendParallelMutex(b *testing.B) {
	l := NewMutexLog()
	var tids atomic.Int32
	b.RunParallel(func(pb *testing.PB) {
		e := entry(tids.Add(1), "M")
		for pb.Next() {
			l.Append(e)
		}
	})
	b.StopTimer()
	l.Close()
}

func BenchmarkAppendMutex(b *testing.B) {
	l := NewMutexLog()
	e := entry(1, "M")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(e)
	}
}
