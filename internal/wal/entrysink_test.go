package wal

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/event"
)

// recordingSink captures the EntrySink contract: entries arrive on the
// sink goroutine in log order, and Flush is called exactly once, after the
// last entry of the closed log.
type recordingSink struct {
	mu      sync.Mutex
	seqs    []int64
	flushes int
	failAt  int64 // if non-zero, WriteEntry fails on this sequence number
}

func (s *recordingSink) WriteEntry(e event.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failAt != 0 && e.Seq == s.failAt {
		return fmt.Errorf("sink failure at #%d", e.Seq)
	}
	s.seqs = append(s.seqs, e.Seq)
	return nil
}

func (s *recordingSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes++
	return nil
}

func TestAttachEntrySinkOrderAndFlush(t *testing.T) {
	l := New(LevelIO)
	rs := &recordingSink{}
	if err := l.AttachEntrySink(rs); err != nil {
		t.Fatal(err)
	}
	if err := l.AttachEntrySink(&recordingSink{}); err == nil {
		t.Fatal("second sink attached without error")
	}

	// Concurrent appenders: the sink must still observe the committed log
	// order, not the arrival races.
	const producers, each = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Append(event.Entry{Tid: 1, Kind: event.KindCall, Method: "M"})
			}
		}()
	}
	wg.Wait()
	l.Close()

	if err := l.SinkErr(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.seqs) != producers*each {
		t.Fatalf("sink saw %d entries, want %d", len(rs.seqs), producers*each)
	}
	for i, seq := range rs.seqs {
		if seq != int64(i+1) {
			t.Fatalf("sink order broken at %d: got seq %d", i, seq)
		}
	}
	if rs.flushes != 1 {
		t.Fatalf("Flush called %d times, want exactly 1", rs.flushes)
	}
}

func TestEntrySinkErrorSurfacesWithoutWedging(t *testing.T) {
	l := NewWithOptions(LevelIO, Options{SegmentSize: 16, Window: 32})
	rs := &recordingSink{failAt: 5}
	if err := l.AttachEntrySink(rs); err != nil {
		t.Fatal(err)
	}
	// Append far past the window: a broken sink must keep draining (so
	// backpressure and truncation are not wedged) while recording the
	// first error.
	for i := 0; i < 200; i++ {
		l.Append(event.Entry{Tid: 1, Kind: event.KindCall, Method: "M"})
	}
	l.Close()
	err := l.SinkErr()
	if err == nil || err.Error() != "sink failure at #5" {
		t.Fatalf("SinkErr = %v, want the first sink failure", err)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	// Delivery stops at the first failure, but the drain continued.
	if len(rs.seqs) != 4 {
		t.Fatalf("sink recorded %d entries before the failure, want 4", len(rs.seqs))
	}
}
