package ledger

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// Target adapts the ledger to the random test harness. The mix leans on
// Transfer (the method carrying the planted lock-order inversion) and keeps
// Seal rare so most schedules exercise open accounts; sealing does not
// hinder inversion discovery, since Transfer takes both locks before it
// checks the latch.
func Target(bug Bug) harness.Target {
	return harness.Target{
		Name: "Ledger-LockPair",
		New: func(log *vyrd.Log) harness.Instance {
			l := New(bug)
			return harness.Instance{Methods: methods(l)}
		},
		NewSpec:     func() core.Spec { return spec.NewLedger() },
		NewReplayer: func() core.Replayer { return NewReplayer() },
	}
}

func methods(l *Ledger) []harness.Method {
	return []harness.Method{
		{Name: "Deposit", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			l.Deposit(p, pick())
		}},
		{Name: "Transfer", Weight: 40, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			a := pick()
			l.Transfer(p, a, a+1)
		}},
		{Name: "Seal", Weight: 3, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			l.Seal(p, pick())
		}},
		{Name: "Get", Weight: 27, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			l.Get(p, pick())
		}},
	}
}
