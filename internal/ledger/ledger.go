// Package ledger implements a two-account bank ledger protected by
// per-account mutexes. It is the temporal-property exploration subject: its
// mutators log lock-acq / lock-rel write actions around every critical
// section, so the built-in lock-reversal LTL property (internal/ltl) can
// observe the locking discipline in the execution log.
//
// The planted bug (BugReversedLocks) is a lock-order inversion, not a data
// bug: a Transfer racing with a concurrent Deposit takes the two account
// locks in reverse order. The transfer still moves the money correctly —
// refinement and linearizability stay clean — but the log now contains a
// reversed nesting (hi acquired while lo is wanted) alongside the canonical
// nesting, which is exactly the deadlock-potential shape the lock-reversal
// property refutes. Only the temporal engine sees it.
//
// The reversed path is gated on a hint flag that a Deposit raises only for
// the duration of one controlled-scheduler yield, so uncontrolled stress
// essentially never takes it, while PCT exploration parks the depositing
// task inside the window and drives the transfer straight through it. The
// second lock of the reversed path is acquired with TryLock, so the
// inversion can never become a real deadlock: on contention the transfer
// backs off (logging the release) and retries in canonical order.
package ledger

import (
	"sync"
	"sync/atomic"

	"repro/internal/spec"
	"repro/vyrd"
)

// NumAccounts is the number of accounts (and hence per-account locks).
// Account indices double as lock identifiers in lock-acq/lock-rel entries.
// The spec package owns the definition (it cannot import this one).
const NumAccounts = spec.LedgerAccounts

// Log operation names, shared with the built-in property constructors in
// internal/bench so the subject and its properties cannot drift apart.
const (
	LockAcqOp = "lock-acq"  // lock-acq <acct>: mutex acquired
	LockRelOp = "lock-rel"  // lock-rel <acct>: mutex about to be released
	SetOp     = "acct-set"  // acct-set <acct> <balance>: balance written
	SealOp    = "acct-seal" // acct-seal <acct>: account sealed (one-way)
)

// Bug selects the planted defect.
type Bug int

const (
	// BugNone: transfers always lock in canonical (index) order.
	BugNone Bug = iota
	// BugReversedLocks: when a concurrent Deposit's hint window is open,
	// Transfer acquires the higher-indexed lock first and TryLocks the
	// lower one — a lock-order inversion visible only in the log.
	BugReversedLocks
)

type account struct {
	mu     sync.Mutex
	bal    int
	sealed bool
}

// Ledger is the instrumented implementation.
type Ledger struct {
	acct [NumAccounts]account

	// hint is nonzero while some Deposit is parked at its pre-lock yield
	// point. It gates the buggy Transfer path so the inversion needs a
	// genuinely adversarial schedule to appear.
	hint atomic.Int32

	bug Bug
}

// New returns a ledger with the given planted bug.
func New(bug Bug) *Ledger { return &Ledger{bug: bug} }

func clampAcct(a int) int {
	a %= NumAccounts
	if a < 0 {
		a += NumAccounts
	}
	return a
}

// Deposit adds one unit to account a. It fails (returns false) if the
// account has been sealed. The hint window — raise flag, yield, lower flag —
// sits before the lock acquisition so no lock is held while the scheduler
// parks the task there.
func (l *Ledger) Deposit(p *vyrd.Probe, a int) bool {
	a = clampAcct(a)
	inv := p.Call("Deposit", a)

	l.hint.Add(1)
	p.Yield() // scheduling point: exploration parks the task mid-window
	l.hint.Add(-1)

	acc := &l.acct[a]
	acc.mu.Lock()
	p.Write(LockAcqOp, a)
	if acc.sealed {
		inv.Commit("sealed")
		p.Write(LockRelOp, a)
		acc.mu.Unlock()
		inv.Return(false)
		return false
	}
	acc.bal++
	inv.CommitWrite("deposited", SetOp, a, acc.bal)
	p.Write(LockRelOp, a)
	acc.mu.Unlock()
	inv.Return(true)
	return true
}

// Transfer moves one unit from account `from` to account `to`. It fails if
// either account is sealed or the two indices coincide. Both account locks
// are held across the decision and the two balance writes, so the transfer
// itself is atomic regardless of which path acquired them.
func (l *Ledger) Transfer(p *vyrd.Probe, from, to int) bool {
	from, to = clampAcct(from), clampAcct(to)
	inv := p.Call("Transfer", from, to)
	if from == to {
		inv.Commit("self")
		inv.Return(false)
		return false
	}
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}

	locked := false
	if l.bug == BugReversedLocks && l.hint.Load() != 0 {
		// BUG: lock-order inversion. With a Deposit parked in its hint
		// window, grab the high lock first, then try the low one. TryLock
		// keeps this deadlock-free (on contention we release and fall back
		// to canonical order), but the log now carries the reversed
		// nesting hi-then-lo the lock-reversal property forbids.
		l.acct[hi].mu.Lock()
		p.Write(LockAcqOp, hi)
		if l.acct[lo].mu.TryLock() {
			p.Write(LockAcqOp, lo)
			locked = true
		} else {
			p.Write(LockRelOp, hi)
			l.acct[hi].mu.Unlock()
		}
	}
	if !locked {
		l.acct[lo].mu.Lock()
		p.Write(LockAcqOp, lo)
		l.acct[hi].mu.Lock()
		p.Write(LockAcqOp, hi)
	}

	src, dst := &l.acct[from], &l.acct[to]
	ok := !src.sealed && !dst.sealed
	if ok {
		inv.BeginCommitBlock()
		src.bal--
		p.Write(SetOp, from, src.bal)
		dst.bal++
		p.Write(SetOp, to, dst.bal)
		inv.Commit("transferred")
		inv.EndCommitBlock()
	} else {
		inv.Commit("sealed")
	}

	// Release order is irrelevant for the property (only nested acquires
	// matter); release in reverse acquisition order like the real code
	// paths above would.
	p.Write(LockRelOp, hi)
	l.acct[hi].mu.Unlock()
	p.Write(LockRelOp, lo)
	l.acct[lo].mu.Unlock()
	inv.Return(ok)
	return ok
}

// Seal permanently freezes account a: further deposits and transfers
// touching it fail. Returns false if it was already sealed. Sealing is a
// one-way latch, which the built-in sealed-key property checks against the
// log: no acct-set on a may follow acct-seal a.
func (l *Ledger) Seal(p *vyrd.Probe, a int) bool {
	a = clampAcct(a)
	inv := p.Call("Seal", a)
	acc := &l.acct[a]
	acc.mu.Lock()
	p.Write(LockAcqOp, a)
	ok := !acc.sealed
	if ok {
		acc.sealed = true
		inv.CommitWrite("sealed", SealOp, a)
	} else {
		inv.Commit("already-sealed")
	}
	p.Write(LockRelOp, a)
	acc.mu.Unlock()
	inv.Return(ok)
	return ok
}

// Get returns the balance of account a. It is an observer: only its call
// and return are logged — in particular no lock events, since observers
// must not contribute write actions to the log.
func (l *Ledger) Get(p *vyrd.Probe, a int) int {
	a = clampAcct(a)
	inv := p.Call("Get", a)
	acc := &l.acct[a]
	acc.mu.Lock()
	bal := acc.bal
	acc.mu.Unlock()
	inv.Return(bal)
	return bal
}
