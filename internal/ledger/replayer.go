package ledger

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// View spaces shared by the replayer and the ledger specification, so viewI
// and viewS agree on the canonical form: "bal:<acct>" holds the balance,
// "sealed:<acct>" is 1 once the account is sealed.
var (
	spaceBal    = view.NewSpace("bal")
	spaceSealed = view.NewSpace("sealed")
)

// Replayer reconstructs ledger state (the replica) from logged write
// actions and exposes the viewI table over it (Section 6.2). Lock events
// are discipline annotations for the temporal engine, not state updates:
// the replayer skips them.
//
// Write operations:
//
//	"acct-set" a v    account a's balance is now v
//	"acct-seal" a     account a is sealed (one-way latch)
//	"lock-acq" a      account a's mutex acquired (ignored here)
//	"lock-rel" a      account a's mutex about to be released (ignored here)
type Replayer struct {
	table *view.Table
	seal  [NumAccounts]bool
}

// NewReplayer returns an empty replica.
func NewReplayer() *Replayer {
	return &Replayer{table: view.NewTable()}
}

// Reset implements core.Replayer.
func (r *Replayer) Reset() {
	r.table = view.NewTable()
	r.seal = [NumAccounts]bool{}
}

// View implements core.Replayer.
func (r *Replayer) View() *view.Table { return r.table }

// Invariants implements core.Replayer. The seal latch is enforced per
// replayed write (a balance write on a sealed account fails in Apply), so
// there is nothing left to re-check here.
func (r *Replayer) Invariants() error { return nil }

// Apply implements core.Replayer.
func (r *Replayer) Apply(op string, args []event.Value) error {
	switch op {
	case LockAcqOp, LockRelOp:
		// Locking discipline events: meaningful to the temporal engine,
		// no-ops on the replica.
		return nil
	case SetOp:
		if len(args) != 2 {
			return fmt.Errorf("ledger: %s wants 2 args, got %d", op, len(args))
		}
		a, ok := event.Int(args[0])
		if !ok || a < 0 || a >= NumAccounts {
			return fmt.Errorf("ledger: %s bad account %v", op, args[0])
		}
		v, ok := event.Int(args[1])
		if !ok {
			return fmt.Errorf("ledger: %s bad balance %v", op, args[1])
		}
		if r.seal[a] {
			return fmt.Errorf("ledger: %s on sealed account %d", op, a)
		}
		r.table.SetInt(spaceBal, int64(a), int64(v))
		return nil
	case SealOp:
		if len(args) != 1 {
			return fmt.Errorf("ledger: %s wants 1 arg, got %d", op, len(args))
		}
		a, ok := event.Int(args[0])
		if !ok || a < 0 || a >= NumAccounts {
			return fmt.Errorf("ledger: %s bad account %v", op, args[0])
		}
		r.seal[a] = true
		r.table.SetInt(spaceSealed, int64(a), 1)
		return nil
	}
	return fmt.Errorf("ledger: unknown write op %q", op)
}
