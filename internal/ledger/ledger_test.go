package ledger

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ltl"
	"repro/vyrd"
)

func runLedger(t *testing.T, bug Bug, seed int64) harness.Result {
	t.Helper()
	return harness.Run(Target(bug), harness.Config{
		Threads:      3,
		OpsPerThread: 40,
		KeyPool:      8,
		Shrink:       true,
		Seed:         seed,
		Level:        vyrd.LevelView,
	})
}

func checkView(t *testing.T, res harness.Result) *core.Report {
	t.Helper()
	tgt := Target(BugNone)
	rep, err := core.CheckEntries(res.Log.Snapshot(), tgt.NewSpec(),
		core.WithMode(core.ModeView), core.WithReplayer(tgt.NewReplayer()))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestLedgerViewRefinementClean(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rep := checkView(t, runLedger(t, BugNone, seed))
		if !rep.Ok() {
			t.Fatalf("seed %d: clean ledger fails refinement: %s", seed, rep)
		}
		if rep.CommitsApplied == 0 || rep.ObserversChecked == 0 {
			t.Fatalf("seed %d: run exercised nothing: %s", seed, rep)
		}
	}
}

func TestLedgerBuggyVariantStillRefines(t *testing.T) {
	// The planted bug is a locking-discipline inversion, not a data bug:
	// refinement must stay clean even on the buggy variant. (Whether the
	// inversion actually fired is irrelevant here; the transfers remain
	// atomic either way.)
	for seed := int64(1); seed <= 4; seed++ {
		rep := checkView(t, runLedger(t, BugReversedLocks, seed))
		if !rep.Ok() {
			t.Fatalf("seed %d: buggy ledger must still refine: %s", seed, rep)
		}
	}
}

// lockPairs enumerates the lock identifiers for property construction.
func lockPairs() []int {
	locks := make([]int, NumAccounts)
	for i := range locks {
		locks[i] = i
	}
	return locks
}

func TestLedgerReversedPathRefutesLockReversal(t *testing.T) {
	// Drive the inversion deterministically: one canonical transfer on
	// thread 1, then a transfer on thread 2 with the hint window forced
	// open. The combined log contains both nesting orders, which is
	// exactly what the lock-reversal property forbids.
	l := New(BugReversedLocks)
	log := vyrd.NewLog(vyrd.LevelView)
	p1, p2 := log.NewProbe(), log.NewProbe()

	if !l.Transfer(p1, 0, 1) {
		t.Fatal("canonical transfer failed")
	}
	l.hint.Add(1) // as if a Deposit were parked in its yield window
	if !l.Transfer(p2, 1, 0) {
		t.Fatal("reversed transfer failed")
	}
	l.hint.Add(-1)
	log.Close()

	src := ltl.LockReversalProp("no-lock-reversal", LockAcqOp, LockRelOp,
		lockPairs(), []int{int(p1.Tid()), int(p2.Tid())})
	s, err := ltl.ParseProps(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rep := ltl.CheckEntries(s, log.Snapshot())
	if rep.PropsViolated != 1 {
		t.Fatalf("want the reversal refuted, got %s", rep)
	}

	// The same pair of transfers in canonical order leaves the property
	// undecided.
	l2 := New(BugNone)
	log2 := vyrd.NewLog(vyrd.LevelView)
	q1, q2 := log2.NewProbe(), log2.NewProbe()
	l2.Transfer(q1, 0, 1)
	l2.Transfer(q2, 1, 0)
	log2.Close()
	s2, err := ltl.ParseProps(ltl.LockReversalProp("no-lock-reversal", LockAcqOp, LockRelOp,
		lockPairs(), []int{int(q1.Tid()), int(q2.Tid())}))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if rep := ltl.CheckEntries(s2, log2.Snapshot()); rep.PropsViolated != 0 {
		t.Fatalf("canonical transfers must not refute the property: %s", rep)
	}
}

func TestLedgerSealLatch(t *testing.T) {
	l := New(BugNone)
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()

	if !l.Deposit(p, 0) || !l.Seal(p, 0) {
		t.Fatal("setup failed")
	}
	if l.Deposit(p, 0) {
		t.Fatal("deposit into sealed account succeeded")
	}
	if l.Transfer(p, 0, 1) {
		t.Fatal("transfer from sealed account succeeded")
	}
	if l.Seal(p, 0) {
		t.Fatal("double seal succeeded")
	}
	if got := l.Get(p, 0); got != 1 {
		t.Fatalf("balance = %d, want 1", got)
	}
	log.Close()

	// The trace refines, and the sealed-key property holds over it.
	tgt := Target(BugNone)
	rep, err := core.CheckEntries(log.Snapshot(), tgt.NewSpec(),
		core.WithMode(core.ModeView), core.WithReplayer(tgt.NewReplayer()))
	if err != nil || !rep.Ok() {
		t.Fatalf("refinement: %v %s", err, rep)
	}
	s := ltl.NewSet()
	for _, line := range ltl.SealedKeyProps(SetOp, SealOp, lockPairs()) {
		if err := s.AddSource(line); err != nil {
			t.Fatal(err)
		}
	}
	if rep := ltl.CheckEntries(s, log.Snapshot()); rep.PropsViolated != 0 {
		t.Fatalf("sealed-key property refuted on a correct run: %s", rep)
	}
}
