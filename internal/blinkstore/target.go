package blinkstore

import (
	"math/rand"
	"runtime"

	"repro/internal/blinktree"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// Target adapts the cache-backed B-link tree to the random test harness.
// The worker interleaves the tree's compression pass with the underlying
// cache's flush and reclaim daemons, exercising the full Fig. 10 stack.
// The tree-level log vocabulary matches internal/blinktree, so its
// Replayer and the KV specification check this composition unchanged.
func Target(order int, bug Bug) harness.Target {
	return harness.Target{
		Name: "BLinkTree-on-Cache",
		New: func(log *vyrd.Log) harness.Instance {
			t := New(order, bug)
			step := 0
			return harness.Instance{
				Methods: []harness.Method{
					{Name: "Insert", Weight: 40, Run: func(p *vyrd.Probe, rng *rand.Rand, pick func() int) {
						t.Insert(p, pick(), rng.Intn(1000))
					}},
					{Name: "Delete", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						t.Delete(p, pick())
					}},
					{Name: "Lookup", Weight: 40, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						t.Lookup(p, pick())
					}},
				},
				WorkerStep: func(p *vyrd.Probe) {
					// The tree's compressor plus the storage daemons below
					// it (uninstrumented: the store is assumed correct in
					// this modular setup).
					switch step % 3 {
					case 0:
						t.Compress(p)
					case 1:
						t.Cache().Flush(nil)
					case 2:
						t.Cache().Reclaim(nil)
					}
					step++
					runtime.Gosched()
				},
			}
		},
		NewSpec:     func() core.Spec { return spec.NewKV() },
		NewReplayer: func() core.Replayer { return blinktree.NewReplayer() },
	}
}
