// Package blinkstore composes the Boxwood stack the way Fig. 10 of the
// paper draws it: a concurrent B-link tree whose nodes are serialized byte
// arrays stored in the Cache + Chunk Manager data store, rather than
// in-memory structs. It is the modular-verification counterpart of
// internal/blinktree (Section 7.2: "We treated Cache as a separate data
// structure ... The verification of BLinkTree was performed assuming that
// the Cache+Chunk Manager combination works correctly"): when this tree is
// the verification subject, the cache below it runs uninstrumented (nil
// probe) and is assumed correct; the cache is verified separately by its
// own package.
//
// The tree-level instrumentation, log vocabulary and replica are identical
// to internal/blinktree, so the same Replayer and KV specification check
// both implementations — node storage is exactly the kind of detail viewI
// abstracts away.
package blinkstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// node is the in-memory form of a tree node; on the store it lives as the
// byte array produced by marshal.
type node struct {
	level int32 // 0 for leaves
	high  int64 // exclusive upper bound of the key range
	right int64 // right sibling handle (0 = none)
	ver   int64 // content version (leaves)
	keys  []int64
	vals  []int64 // leaves: data; internal: unused
	kids  []int64 // internal: len(keys)+1 child handles
}

// maxKey is the high key of rightmost nodes.
const maxKey = math.MaxInt64

// marshal serializes the node. Layout (little endian):
//
//	level int32 | high int64 | right int64 | ver int64 |
//	nkeys int32 | keys ... |
//	leaves: vals ... (nkeys)
//	internal: kids ... (nkeys+1)
func (n *node) marshal() []byte {
	size := 4 + 8 + 8 + 8 + 4 + 8*len(n.keys)
	if n.level == 0 {
		size += 8 * len(n.vals)
	} else {
		size += 8 * len(n.kids)
	}
	buf := make([]byte, size)
	off := 0
	binary.LittleEndian.PutUint32(buf[off:], uint32(n.level))
	off += 4
	binary.LittleEndian.PutUint64(buf[off:], uint64(n.high))
	off += 8
	binary.LittleEndian.PutUint64(buf[off:], uint64(n.right))
	off += 8
	binary.LittleEndian.PutUint64(buf[off:], uint64(n.ver))
	off += 8
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(n.keys)))
	off += 4
	for _, k := range n.keys {
		binary.LittleEndian.PutUint64(buf[off:], uint64(k))
		off += 8
	}
	if n.level == 0 {
		for _, v := range n.vals {
			binary.LittleEndian.PutUint64(buf[off:], uint64(v))
			off += 8
		}
	} else {
		for _, c := range n.kids {
			binary.LittleEndian.PutUint64(buf[off:], uint64(c))
			off += 8
		}
	}
	return buf
}

// unmarshal parses a stored node.
func unmarshal(data []byte) (*node, error) {
	if len(data) < 4+8+8+8+4 {
		return nil, fmt.Errorf("blinkstore: node blob too short (%d bytes)", len(data))
	}
	n := &node{}
	off := 0
	n.level = int32(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	n.high = int64(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	n.right = int64(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	n.ver = int64(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	nkeys := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	extra := nkeys
	if n.level != 0 {
		extra = nkeys + 1
	}
	if len(data) != off+8*(nkeys+extra) {
		return nil, fmt.Errorf("blinkstore: node blob size %d inconsistent with %d keys", len(data), nkeys)
	}
	n.keys = make([]int64, nkeys)
	for i := range n.keys {
		n.keys[i] = int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	if n.level == 0 {
		n.vals = make([]int64, nkeys)
		for i := range n.vals {
			n.vals[i] = int64(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
	} else {
		n.kids = make([]int64, nkeys+1)
		for i := range n.kids {
			n.kids[i] = int64(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
	}
	return n, nil
}

// keyIndex returns the position of key in a leaf, or -1.
func (n *node) keyIndex(key int64) int {
	for i, k := range n.keys {
		if k == key {
			return i
		}
		if k > key {
			return -1
		}
	}
	return -1
}

// childFor returns the child handle covering key in an internal node
// (boundaries left-inclusive on the right child, as in internal/blinktree).
func (n *node) childFor(key int64) int64 {
	i := 0
	for i < len(n.keys) && n.keys[i] <= key {
		i++
	}
	return n.kids[i]
}
