package blinkstore

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/chunk"
	"repro/internal/spec"
	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation.
	BugNone Bug = iota
	// BugDuplicateInsert checks key presence before acquiring the leaf lock
	// (the same "allowing duplicated data nodes" error as the in-memory
	// tree, here over stored nodes).
	BugDuplicateInsert
)

// Module names of the composed (Fig. 10) check: the tree's entries and the
// underlying store's entries share one log, tagged per module.
const (
	ModuleTree  = "tree"
	ModuleStore = "store"
)

// Tree is the cache-backed concurrent B-link tree.
type Tree struct {
	store *nodeStore
	order int

	// composed: log the storage layer too, under module-scoped probes, so
	// tree and store refinement checks run concurrently from one log.
	composed bool

	rootMu sync.Mutex
	root   int64

	bug Bug
	// RaceWindow, when non-nil, runs in the buggy Insert between the
	// unlocked presence check and the re-descent.
	RaceWindow func(key int)
}

// New returns an empty tree over a fresh Cache + Chunk Manager stack.
// order is the maximum keys per node (minimum 3).
func New(order int, bug Bug) *Tree {
	return NewOnCache(cache.New(chunk.New(), cache.BugNone), order, bug)
}

// NewOnCache builds the tree over a caller-provided cache (Fig. 10's
// composition; the cache is used uninstrumented and assumed correct).
func NewOnCache(c *cache.Cache, order int, bug Bug) *Tree {
	if order < 3 {
		order = 3
	}
	t := &Tree{store: newNodeStore(c), order: order, bug: bug}
	rootH := t.store.alloc()
	t.store.write(nil, rootH, &node{level: 0, high: maxKey})
	t.root = rootH
	return t
}

// NewComposed builds a tree whose storage accesses are logged too: every
// tree-level entry carries module "tree" and every cache-level entry module
// "store", so a Multi checker verifies both refinements concurrently over
// the single totally ordered log (Section 7.2, Fig. 10).
func NewComposed(order int, bug Bug) *Tree {
	t := New(order, bug)
	t.composed = true
	return t
}

// probes derives the module-scoped probes for one method execution. For a
// plain tree the method probe is used unscoped and the store stays
// uninstrumented (nil probe).
func (t *Tree) probes(p *vyrd.Probe) (tp, sp *vyrd.Probe) {
	if !t.composed {
		return p, nil
	}
	tp = p.Scoped(ModuleTree)
	return tp, tp.Scoped(ModuleStore)
}

// Cache exposes the underlying cache so harnesses can run its maintenance
// daemons alongside the tree.
func (t *Tree) Cache() *cache.Cache { return t.store.cache }

// mustRead reads a node or panics: an unreadable handle means the
// composition itself (not the workload) is broken.
func (t *Tree) mustRead(p *vyrd.Probe, h int64) *node {
	n, err := t.store.read(p, h)
	if err != nil {
		panic(err)
	}
	return n
}

// descendToLeaf walks to the leaf covering key, moving right past splits,
// returning its handle and decoded contents with the handle locked.
func (t *Tree) descendToLeaf(sp *vyrd.Probe, key int64) (int64, *node) {
	t.rootMu.Lock()
	h := t.root
	t.rootMu.Unlock()
	for {
		t.store.lock(h)
		n := t.mustRead(sp, h)
		if key >= n.high && n.right != 0 {
			next := n.right
			t.store.unlock(h)
			h = next
			continue
		}
		if n.level == 0 {
			return h, n
		}
		next := n.childFor(key)
		t.store.unlock(h)
		h = next
	}
}

// Insert sets key to data (void return, as Boxwood's INSERT).
func (t *Tree) Insert(p *vyrd.Probe, key, data int) {
	tp, sp := t.probes(p)
	inv := tp.Call("Insert", key, data)
	k, d := int64(key), int64(data)

	if t.bug == BugDuplicateInsert {
		h, n := t.descendToLeaf(sp, k)
		present := n.keyIndex(k) >= 0
		t.store.unlock(h)
		if t.RaceWindow != nil {
			t.RaceWindow(key)
		} else {
			runtime.Gosched() // model preemption in the race window
		}
		tp.Yield() // controlled-scheduler preemption point inside the race window
		h, n = t.descendToLeaf(sp, k)
		if present {
			if i := n.keyIndex(k); i >= 0 {
				n.vals[i] = d
				n.ver++
				t.store.write(sp, h, n)
				inv.CommitWrite("cp1-overwrite", "leaf-set", int(h), key, data, int(n.ver))
				t.store.unlock(h)
				inv.Return(nil)
				return
			}
		}
		// BUG: blind add without re-checking presence under the lock.
		t.insertIntoLeaf(tp, sp, inv, h, n, k, d)
		inv.Return(nil)
		return
	}

	h, n := t.descendToLeaf(sp, k)
	if i := n.keyIndex(k); i >= 0 {
		n.vals[i] = d
		n.ver++
		t.store.write(sp, h, n)
		inv.CommitWrite("cp1-overwrite", "leaf-set", int(h), key, data, int(n.ver))
		t.store.unlock(h)
		inv.Return(nil)
		return
	}
	t.insertIntoLeaf(tp, sp, inv, h, n, k, d)
	inv.Return(nil)
}

// insertIntoLeaf adds (key, data) to the locked leaf, splitting when full,
// and completes separator propagation after releasing the leaf.
func (t *Tree) insertIntoLeaf(tp, sp *vyrd.Probe, inv *vyrd.Invocation, h int64, n *node, key, data int64) {
	insertSorted := func(n *node, key, data int64) {
		i := 0
		for i < len(n.keys) && n.keys[i] < key {
			i++
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = data
	}

	if len(n.keys) < t.order {
		insertSorted(n, key, data)
		n.ver++
		t.store.write(sp, h, n)
		inv.CommitWrite("cp2-insert", "leaf-add", int(h), int(key), int(data), int(n.ver))
		t.store.unlock(h)
		return
	}

	// Split: the upper half moves to a fresh stored node, published via the
	// left node's right pointer before the leaf lock is released.
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		level: 0,
		high:  n.high,
		right: n.right,
		keys:  append([]int64(nil), n.keys[mid:]...),
		vals:  append([]int64(nil), n.vals[mid:]...),
	}
	rh := t.store.alloc()
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.high = sep
	n.right = rh
	n.ver++
	tp.Write("leaf-split", int(h), int(rh), int(sep), int(n.ver), int(right.ver))

	target, targetH, label := n, h, "cp3-insert-split-left"
	if key >= sep {
		target, targetH, label = right, rh, "cp4-insert-split-right"
	}
	insertSorted(target, key, data)
	target.ver++
	t.store.write(sp, rh, right)
	t.store.write(sp, h, n)
	inv.CommitWrite(label, "leaf-add", int(targetH), int(key), int(data), int(target.ver))
	t.store.unlock(h)

	t.insertSeparator(sp, 1, sep, rh)
}

// insertSeparator installs (sep, right) at the parent level, splitting
// internal nodes and growing the root as needed. Internal restructuring is
// outside the view's support and not logged.
func (t *Tree) insertSeparator(sp *vyrd.Probe, level int32, sep int64, right int64) {
	for {
		t.rootMu.Lock()
		rootH := t.root
		rootN := t.mustRead(sp, rootH) // level is immutable per node
		if rootN.level < level {
			nr := &node{
				level: level,
				high:  maxKey,
				keys:  []int64{sep},
				kids:  []int64{rootH, right},
			}
			nh := t.store.alloc()
			t.store.write(sp, nh, nr)
			t.root = nh
			t.rootMu.Unlock()
			return
		}
		t.rootMu.Unlock()

		ph, pn := t.parentAt(sp, level, sep)
		i := 0
		for i < len(pn.keys) && pn.keys[i] < sep {
			i++
		}
		pn.keys = append(pn.keys, 0)
		copy(pn.keys[i+1:], pn.keys[i:])
		pn.keys[i] = sep
		pn.kids = append(pn.kids, 0)
		copy(pn.kids[i+2:], pn.kids[i+1:])
		pn.kids[i+1] = right

		if len(pn.keys) <= t.order {
			t.store.write(sp, ph, pn)
			t.store.unlock(ph)
			return
		}

		mid := len(pn.keys) / 2
		promote := pn.keys[mid]
		newRight := &node{
			level: pn.level,
			high:  pn.high,
			right: pn.right,
			keys:  append([]int64(nil), pn.keys[mid+1:]...),
			kids:  append([]int64(nil), pn.kids[mid+1:]...),
		}
		nrh := t.store.alloc()
		pn.keys = pn.keys[:mid:mid]
		pn.kids = pn.kids[: mid+1 : mid+1]
		pn.high = promote
		pn.right = nrh
		t.store.write(sp, nrh, newRight)
		t.store.write(sp, ph, pn)
		t.store.unlock(ph)

		level, sep, right = level+1, promote, nrh
	}
}

// parentAt walks to the node at the given level covering key, locked.
func (t *Tree) parentAt(sp *vyrd.Probe, level int32, key int64) (int64, *node) {
	t.rootMu.Lock()
	h := t.root
	t.rootMu.Unlock()
	for {
		t.store.lock(h)
		n := t.mustRead(sp, h)
		if key >= n.high && n.right != 0 {
			next := n.right
			t.store.unlock(h)
			h = next
			continue
		}
		if n.level == level {
			return h, n
		}
		next := n.childFor(key)
		t.store.unlock(h)
		h = next
	}
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(p *vyrd.Probe, key int) bool {
	tp, sp := t.probes(p)
	inv := tp.Call("Delete", key)
	k := int64(key)
	h, n := t.descendToLeaf(sp, k)
	i := n.keyIndex(k)
	if i < 0 {
		inv.Commit("not-found")
		t.store.unlock(h)
		inv.Return(false)
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.ver++
	t.store.write(sp, h, n)
	inv.CommitWrite("deleted", "leaf-del", int(h), key, int(n.ver))
	t.store.unlock(h)
	inv.Return(true)
	return true
}

// Lookup returns the data stored under key, or -1 (observer).
func (t *Tree) Lookup(p *vyrd.Probe, key int) int {
	tp, sp := t.probes(p)
	inv := tp.Call("Lookup", key)
	k := int64(key)
	h, n := t.descendToLeaf(sp, k)
	data := -1
	if i := n.keyIndex(k); i >= 0 {
		data = int(n.vals[i])
	}
	t.store.unlock(h)
	inv.Return(data)
	return data
}

// Compress shifts the top key of an overfull-ish leaf to its right sibling
// when the sibling has room, as the in-memory tree's compression thread
// does. The move is the commit block of the Compress pseudo-method.
func (t *Tree) Compress(p *vyrd.Probe) {
	tp, sp := t.probes(p)
	inv := tp.Call(spec.MethodCompress)
	// Find the leftmost leaf.
	t.rootMu.Lock()
	h := t.root
	t.rootMu.Unlock()
	for {
		t.store.lock(h)
		n := t.mustRead(sp, h)
		if n.level == 0 {
			t.store.unlock(h)
			break
		}
		next := n.kids[0]
		t.store.unlock(h)
		h = next
	}
	// Walk the leaf chain looking for a movable pair.
	for {
		t.store.lock(h)
		n := t.mustRead(sp, h)
		if n.right == 0 {
			t.store.unlock(h)
			inv.Commit("nothing")
			inv.Return(nil)
			return
		}
		rh := n.right
		t.store.lock(rh)
		rn := t.mustRead(sp, rh)
		if len(n.keys) >= 2 && len(rn.keys)+1 <= t.order {
			sep := n.keys[len(n.keys)-1]
			inv.BeginCommitBlock()
			rn.keys = append([]int64{sep}, rn.keys...)
			rn.vals = append([]int64{n.vals[len(n.vals)-1]}, rn.vals...)
			n.keys = n.keys[:len(n.keys)-1]
			n.vals = n.vals[:len(n.vals)-1]
			n.high = sep
			n.ver++
			rn.ver++
			t.store.write(sp, rh, rn)
			t.store.write(sp, h, n)
			tp.Write("leaf-move", int(h), int(rh), int(sep), int(n.ver), int(rn.ver))
			inv.Commit("moved")
			inv.EndCommitBlock()
			t.store.unlock(rh)
			t.store.unlock(h)
			inv.Return(nil)
			return
		}
		t.store.unlock(rh)
		t.store.unlock(h)
		h = rh
	}
}

// Contents returns the reachable (key, data) pairs; for quiesced tests
// only. Duplicate keys are counted in dups.
func (t *Tree) Contents() (pairs map[int]int, dups int) {
	pairs = make(map[int]int)
	t.rootMu.Lock()
	h := t.root
	t.rootMu.Unlock()
	n := t.mustRead(nil, h)
	for n.level != 0 {
		h = n.kids[0]
		n = t.mustRead(nil, h)
	}
	for {
		for i, k := range n.keys {
			if _, seen := pairs[int(k)]; seen {
				dups++
				continue
			}
			pairs[int(k)] = int(n.vals[i])
		}
		if n.right == 0 {
			return pairs, dups
		}
		n = t.mustRead(nil, n.right)
	}
}

// CheckStructure verifies sorted leaves and range consistency on a
// quiesced tree, returning a violation count.
func (t *Tree) CheckStructure() int {
	bad := 0
	t.rootMu.Lock()
	h := t.root
	t.rootMu.Unlock()
	n := t.mustRead(nil, h)
	for n.level != 0 {
		n = t.mustRead(nil, n.kids[0])
	}
	for {
		var prev int64 = math.MinInt64
		for _, k := range n.keys {
			if k < prev {
				bad++
			}
			prev = k
			if k >= n.high {
				bad++
			}
		}
		if n.right == 0 {
			if n.high != maxKey {
				bad++
			}
			return bad
		}
		n = t.mustRead(nil, n.right)
	}
}
