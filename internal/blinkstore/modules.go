package blinkstore

import (
	"math/rand"
	"runtime"

	"repro/internal/blinktree"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// Modules returns the two refinement checks of the composed run (Section
// 7.2, Fig. 10): the tree module against the ordered-map specification and
// the storage module against the abstract data-store specification. Both
// run in view mode over their own projection of the single shared log.
func Modules() []core.Module {
	return []core.Module{
		{Name: ModuleTree, Spec: spec.NewKV(), Opts: []core.Option{
			core.WithMode(core.ModeView), core.WithReplayer(blinktree.NewReplayer())}},
		{Name: ModuleStore, Spec: spec.NewStore(), Opts: []core.Option{
			core.WithMode(core.ModeView), core.WithReplayer(cache.NewReplayer())}},
	}
}

// StoreProbe returns the "store"-scoped probe of a composed tree, for
// driving the cache's maintenance daemons under the store module. For a
// plain tree it returns nil (the store is not under verification).
func (t *Tree) StoreProbe(p *vyrd.Probe) *vyrd.Probe {
	_, sp := t.probes(p)
	return sp
}

// LogInitialState re-logs the stored state that existed before logging
// began (the empty root written at construction) under the store module,
// so the store specification sees every handle later observers read. Call
// it once, before any workload thread starts.
func (t *Tree) LogInitialState(p *vyrd.Probe) {
	sp := t.StoreProbe(p)
	if sp == nil {
		return
	}
	t.rootMu.Lock()
	h := t.root
	t.rootMu.Unlock()
	t.store.lock(h)
	if n, err := t.store.read(nil, h); err == nil {
		t.store.write(sp, h, n)
	}
	t.store.unlock(h)
}

// ComposedTarget adapts the composed tree to the random test harness: tree
// methods log under module "tree", every cache access and maintenance
// daemon under module "store". The run's log is meant for Modules()-based
// multi-checking; the Target's own spec/replayer pair covers only the tree
// module, for single-module comparisons.
func ComposedTarget(order int, bug Bug) harness.Target {
	return harness.Target{
		Name: "BLinkTree+Store",
		New: func(log *vyrd.Log) harness.Instance {
			t := NewComposed(order, bug)
			t.LogInitialState(log.NewProbe())
			step := 0
			return harness.Instance{
				Methods: []harness.Method{
					{Name: "Insert", Weight: 40, Run: func(p *vyrd.Probe, rng *rand.Rand, pick func() int) {
						t.Insert(p, pick(), rng.Intn(1000))
					}},
					{Name: "Delete", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						t.Delete(p, pick())
					}},
					{Name: "Lookup", Weight: 40, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						t.Lookup(p, pick())
					}},
				},
				WorkerStep: func(p *vyrd.Probe) {
					switch step % 3 {
					case 0:
						t.Compress(p)
					case 1:
						t.Cache().Flush(t.StoreProbe(p))
					case 2:
						t.Cache().Reclaim(t.StoreProbe(p))
					}
					step++
					runtime.Gosched()
				},
			}
		},
		NewSpec:     func() core.Spec { return spec.NewKV() },
		NewReplayer: func() core.Replayer { return blinktree.NewReplayer() },
	}
}
