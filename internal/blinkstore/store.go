package blinkstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/vyrd"
)

// nodeStore adapts the Boxwood data store to node granularity: each node is
// a byte array under a unique handle (Section 7.2: "Each shared variable is
// a byte-array identified by a unique handle"), read and written through
// the Cache. A handle-keyed lock table provides the per-node mutual
// exclusion the in-memory tree got from mutexes embedded in its nodes.
//
// In the tree-only setup the cache is accessed with a nil probe: the
// storage layers below the verification subject are assumed correct and
// not logged (Section 6.1 sets aside "the verification of the lower-level
// storage modules"). A composed tree (NewComposed) instead threads a
// "store"-scoped probe through every access, so the cache's own refinement
// check runs concurrently from the same log (Fig. 10).
type nodeStore struct {
	cache *cache.Cache

	mu    sync.Mutex
	locks map[int64]*sync.Mutex

	next atomic.Int64
}

func newNodeStore(c *cache.Cache) *nodeStore {
	return &nodeStore{cache: c, locks: make(map[int64]*sync.Mutex)}
}

// alloc hands out a fresh handle.
func (s *nodeStore) alloc() int64 { return s.next.Add(1) }

// lockOf returns the mutex guarding a handle.
func (s *nodeStore) lockOf(h int64) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.locks[h]
	if !ok {
		l = &sync.Mutex{}
		s.locks[h] = l
	}
	return l
}

func (s *nodeStore) lock(h int64)   { s.lockOf(h).Lock() }
func (s *nodeStore) unlock(h int64) { s.lockOf(h).Unlock() }

// read fetches and decodes the node stored under h. The caller holds h's
// lock (or owns the handle exclusively, for freshly allocated nodes). p is
// the store-scoped probe of the calling thread, or nil when the store layer
// is not under verification.
func (s *nodeStore) read(p *vyrd.Probe, h int64) (*node, error) {
	data, ok := s.cache.Read(p, int(h))
	if !ok {
		return nil, fmt.Errorf("blinkstore: handle %d unwritten", h)
	}
	return unmarshal(data)
}

// write encodes and stores the node under h. The caller holds h's lock.
func (s *nodeStore) write(p *vyrd.Probe, h int64, n *node) {
	s.cache.Write(p, int(h), n.marshal())
}
