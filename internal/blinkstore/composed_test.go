package blinkstore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/vyrd"
)

// runComposed exercises the composed tree+store target and returns the
// recorded entries.
func runComposed(t *testing.T, bug Bug, seed int64) []vyrd.Entry {
	t.Helper()
	res := harness.Run(ComposedTarget(4, bug), harness.Config{
		Threads: 4, OpsPerThread: 150, KeyPool: 32, Seed: seed, Level: vyrd.LevelView,
	})
	return res.Log.Snapshot()
}

// sequentialReports runs each module's check alone over its projection of
// the log — the reference the modular fan-out must agree with.
func sequentialReports(t *testing.T, entries []vyrd.Entry) []core.ModuleReport {
	t.Helper()
	var out []core.ModuleReport
	for _, mod := range Modules() {
		f := core.FilterModule(mod.Name)
		var projected []vyrd.Entry
		for _, e := range entries {
			if f(e) {
				projected = append(projected, e)
			}
		}
		rep, err := core.CheckEntries(projected, mod.Spec, mod.Opts...)
		if err != nil {
			t.Fatalf("sequential %s: %v", mod.Name, err)
		}
		out = append(out, core.ModuleReport{Module: mod.Name, Report: rep})
	}
	return out
}

func diffReports(t *testing.T, multi, seq []core.ModuleReport) {
	t.Helper()
	if len(multi) != len(seq) {
		t.Fatalf("module count: multi %d, sequential %d", len(multi), len(seq))
	}
	for i := range multi {
		m, s := multi[i], seq[i]
		if m.Module != s.Module {
			t.Fatalf("module order: multi %q, sequential %q", m.Module, s.Module)
		}
		if m.Report.Ok() != s.Report.Ok() || m.Report.TotalViolations != s.Report.TotalViolations {
			t.Errorf("module %s: multi ok=%v violations=%d, sequential ok=%v violations=%d",
				m.Module, m.Report.Ok(), m.Report.TotalViolations,
				s.Report.Ok(), s.Report.TotalViolations)
		}
		if m.Report.MethodsCompleted != s.Report.MethodsCompleted || m.Report.CommitsApplied != s.Report.CommitsApplied {
			t.Errorf("module %s: multi saw %d methods/%d commits, sequential %d/%d",
				m.Module, m.Report.MethodsCompleted, m.Report.CommitsApplied,
				s.Report.MethodsCompleted, s.Report.CommitsApplied)
		}
	}
}

// TestMultiCheckerMatchesSequential: the concurrent fan-out must reach
// exactly the verdicts of checking each module alone over its projection
// of the log — on a correct run and on one with an injected tree bug.
func TestMultiCheckerMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		bug  Bug
	}{
		{"correct", BugNone},
		{"duplicate-insert", BugDuplicateInsert},
	} {
		t.Run(tc.name, func(t *testing.T) {
			entries := runComposed(t, tc.bug, 7)
			multi, err := core.CheckEntriesMulti(entries, Modules()...)
			if err != nil {
				t.Fatal(err)
			}
			diffReports(t, multi, sequentialReports(t, entries))
		})
	}
}

// TestComposedCorrectRunBothModulesPass: a correct composed run yields two
// concurrently verified modules with no violations in either.
func TestComposedCorrectRunBothModulesPass(t *testing.T) {
	entries := runComposed(t, BugNone, 3)
	reports, err := core.CheckEntriesMulti(entries, Modules()...)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Ok(reports) {
		for _, mr := range reports {
			t.Logf("%s:\n%s", mr.Module, mr.Report)
		}
		t.Fatal("composed correct run reported violations")
	}
	for _, mr := range reports {
		if mr.Report.MethodsCompleted == 0 {
			t.Fatalf("module %s saw no methods — projection broken", mr.Module)
		}
	}
}

// TestComposedTreeBugIsolatedToTreeModule: the duplicated-insert bug lives
// in the tree layer; the storage module underneath executes correctly and
// its check must stay clean while the tree module reports the violation.
func TestComposedTreeBugIsolatedToTreeModule(t *testing.T) {
	var treeCaught bool
	for seed := int64(0); seed < 10 && !treeCaught; seed++ {
		entries := runComposed(t, BugDuplicateInsert, seed)
		reports, err := core.CheckEntriesMulti(entries, Modules()...)
		if err != nil {
			t.Fatal(err)
		}
		for _, mr := range reports {
			switch mr.Module {
			case ModuleTree:
				if !mr.Report.Ok() {
					treeCaught = true
				}
			case ModuleStore:
				if !mr.Report.Ok() {
					t.Fatalf("store module flagged a tree-level bug:\n%s", mr.Report)
				}
			}
		}
	}
	if !treeCaught {
		t.Fatal("duplicate-insert bug never detected by the tree module")
	}
}

// TestComposedOnlineMultiChecker: the online fan-out (one goroutine per
// module fed by a router from the live log) reaches the same verdicts as
// the offline fan-out over the same snapshot.
func TestComposedOnlineMultiChecker(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	wait, err := log.StartMultiChecker(Modules()...)
	if err != nil {
		t.Fatal(err)
	}
	res := harness.RunOnLog(ComposedTarget(4, BugNone), harness.Config{
		Threads: 4, OpsPerThread: 100, KeyPool: 32, Seed: 11, Level: vyrd.LevelView,
	}, log)
	online := wait()

	offline, err := core.CheckEntriesMulti(res.Log.Snapshot(), Modules()...)
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, online, offline)
	if !core.Ok(online) {
		for _, mr := range online {
			t.Logf("%s:\n%s", mr.Module, mr.Report)
		}
		t.Fatal("online composed check reported violations")
	}
}
