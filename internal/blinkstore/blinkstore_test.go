package blinkstore

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/blinktree"
	"repro/internal/core"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkLog(t *testing.T, log *vyrd.Log, mode core.Mode) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(blinktree.NewReplayer()), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewKV(), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestNodeCodecRoundTrip(t *testing.T) {
	cases := []*node{
		{level: 0, high: maxKey},
		{level: 0, high: 50, right: 7, ver: 3, keys: []int64{1, 2, 3}, vals: []int64{10, 20, 30}},
		{level: 2, high: maxKey, right: 0, keys: []int64{100}, kids: []int64{4, 5}},
	}
	for _, n := range cases {
		got, err := unmarshal(n.marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.level != n.level || got.high != n.high || got.right != n.right || got.ver != n.ver {
			t.Fatalf("header round trip: %+v vs %+v", got, n)
		}
		if len(got.keys) != len(n.keys) {
			t.Fatalf("keys round trip: %v vs %v", got.keys, n.keys)
		}
		for i := range n.keys {
			if got.keys[i] != n.keys[i] {
				t.Fatalf("keys round trip: %v vs %v", got.keys, n.keys)
			}
		}
	}
}

func TestNodeCodecRejectsCorrupt(t *testing.T) {
	if _, err := unmarshal(nil); err == nil {
		t.Fatal("nil blob accepted")
	}
	if _, err := unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short blob accepted")
	}
	n := &node{level: 0, high: 5, keys: []int64{1}, vals: []int64{2}}
	blob := n.marshal()
	if _, err := unmarshal(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

// TestQuickNodeCodec: arbitrary leaves survive the byte round trip.
func TestQuickNodeCodec(t *testing.T) {
	f := func(high, right, ver int64, pairs map[int8]int8) bool {
		n := &node{level: 0, high: high, right: right, ver: ver}
		for k, v := range pairs {
			n.keys = append(n.keys, int64(k))
			n.vals = append(n.vals, int64(v))
		}
		got, err := unmarshal(n.marshal())
		if err != nil || got.high != high || got.right != right || got.ver != ver || len(got.keys) != len(n.keys) {
			return false
		}
		for i := range n.keys {
			if got.keys[i] != n.keys[i] || got.vals[i] != n.vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOverStore(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	tr := New(4, BugNone)
	for i := 0; i < 60; i++ {
		tr.Insert(p, (i*7)%60, i)
	}
	for i := 0; i < 60; i++ {
		k := (i * 7) % 60
		if tr.Lookup(p, k) == -1 {
			t.Fatalf("Lookup(%d) = -1", k)
		}
	}
	if tr.Lookup(p, 999) != -1 {
		t.Fatal("phantom key")
	}
	tr.Insert(p, 5, 777) // overwrite path
	if tr.Lookup(p, 5) != 777 {
		t.Fatal("overwrite lost")
	}
	if !tr.Delete(p, 5) || tr.Delete(p, 5) {
		t.Fatal("delete semantics wrong")
	}
	if bad := tr.CheckStructure(); bad != 0 {
		t.Fatalf("structure violations: %d", bad)
	}
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

func TestCompressOverStorePreservesPairs(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	wp := log.NewWorkerProbe()
	tr := New(4, BugNone)
	for i := 0; i < 40; i++ {
		tr.Insert(p, i, i*10)
	}
	before, _ := tr.Contents()
	for i := 0; i < 8; i++ {
		tr.Compress(wp)
	}
	after, dups := tr.Contents()
	if dups != 0 || len(after) != len(before) {
		t.Fatalf("compression changed contents (%d vs %d, dups %d)", len(after), len(before), dups)
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

// TestStorageMaintenanceIsTransparent: flushing and reclaiming the cache
// below the tree must not disturb the tree's contents or its refinement.
func TestStorageMaintenanceIsTransparent(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	tr := New(4, BugNone)
	for i := 0; i < 30; i++ {
		tr.Insert(p, i, i)
	}
	before, _ := tr.Contents()
	tr.Cache().Flush(nil)
	tr.Cache().Reclaim(nil) // every node now reloads from the chunk manager
	after, dups := tr.Contents()
	if dups != 0 || len(after) != len(before) {
		t.Fatal("storage maintenance changed the tree")
	}
	for i := 0; i < 30; i++ {
		if tr.Lookup(p, i) != i {
			t.Fatalf("Lookup(%d) after eviction", i)
		}
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

// TestBugDeterministicDuplicate: the duplicated-data-nodes bug over stored
// nodes, caught by view refinement exactly as for the in-memory tree.
func TestBugDeterministicDuplicate(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	tr := New(6, BugDuplicateInsert)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	paused := make(chan struct{})
	resume := make(chan struct{})
	var once sync.Once
	tr.RaceWindow = func(key int) {
		once.Do(func() {
			close(paused)
			<-resume
		})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		tr.Insert(p2, 42, 1)
	}()
	<-paused
	tr.RaceWindow = func(int) {}
	tr.Insert(p1, 42, 2)
	close(resume)
	<-done
	log.Close()

	if _, dups := tr.Contents(); dups == 0 {
		t.Fatal("schedule did not produce a duplicate")
	}
	rep := checkLog(t, log, vyrd.ModeView)
	if rep.Ok() || rep.First().Kind != vyrd.ViolationView {
		t.Fatalf("view refinement missed the duplicate:\n%s", rep)
	}
}

func TestConcurrentCorrectFullStack(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	tr := New(4, BugNone)
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	wp := log.NewWorkerProbe()
	go func() {
		defer wwg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				switch i % 3 {
				case 0:
					tr.Compress(wp)
				case 1:
					tr.Cache().Flush(nil)
				case 2:
					tr.Cache().Reclaim(nil)
				}
				i++
			}
		}
	}()
	var wg sync.WaitGroup
	for th := 0; th < 6; th++ {
		wg.Add(1)
		p := log.NewProbe()
		go func(seed int) {
			defer wg.Done()
			x := seed*53 + 11
			for i := 0; i < 250; i++ {
				x = (x*1103515245 + 12345) & 0x7fffffff
				k := x % 24
				switch x % 3 {
				case 0:
					tr.Insert(p, k, x%1000)
				case 1:
					tr.Delete(p, k)
				case 2:
					tr.Lookup(p, k)
				}
			}
		}(th)
	}
	wg.Wait()
	close(stop)
	wwg.Wait()
	log.Close()
	if bad := tr.CheckStructure(); bad != 0 {
		t.Fatalf("structure violations: %d", bad)
	}
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("false positive, %v:\n%s", mode, rep)
		}
	}
}

// TestQuickSequentialAgainstMap: the stored tree agrees with a map model.
func TestQuickSequentialAgainstMap(t *testing.T) {
	f := func(seed int64, orderSel uint8, n uint8) bool {
		order := 3 + int(orderSel)%5
		rng := rand.New(rand.NewSource(seed))
		tr := New(order, BugNone)
		model := map[int]int{}
		for i := 0; i < int(n); i++ {
			k := rng.Intn(25)
			switch rng.Intn(3) {
			case 0:
				d := rng.Intn(100)
				tr.Insert(nil, k, d)
				model[k] = d
			case 1:
				_, present := model[k]
				if tr.Delete(nil, k) != present {
					return false
				}
				delete(model, k)
			case 2:
				want := -1
				if d, ok := model[k]; ok {
					want = d
				}
				if tr.Lookup(nil, k) != want {
					return false
				}
			}
		}
		pairs, dups := tr.Contents()
		if dups != 0 || len(pairs) != len(model) {
			return false
		}
		for k, d := range model {
			if pairs[k] != d {
				return false
			}
		}
		return tr.CheckStructure() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
