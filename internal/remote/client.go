package remote

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/event"
)

// ClientOptions tunes a remote log-shipping client.
type ClientOptions struct {
	// Addr is the vyrdd server address ("host:port").
	Addr string
	// Hello describes the session: spec name, mode, fail-fast, modular.
	// FormatVersion, Session and Window are managed by the client.
	Hello Hello
	// Session, when non-empty, resumes an existing server session instead
	// of opening a new one — the crash-resume path: a crashed producer's
	// successor recovers its local log (wal.Recover), reconnects with the
	// token the predecessor persisted (Client.Session), and replays the
	// recovered entries from sequence 1. The server's Welcome carries its
	// resume point and WriteEntry skips every sequence number the server
	// already ingested, so the replay is idempotent and the stream
	// continues exactly where the crash cut it.
	Session string
	// Window bounds the resend buffer in entries: WriteEntry blocks once
	// Window entries are in flight unacknowledged, which stalls the wal
	// sink reader and engages the log's own Window backpressure on the
	// instrumented program. 0 means DefaultClientWindow.
	Window int
	// BatchEntries is how many entries one Entries frame carries at most
	// (0 = DefaultBatchEntries). Full batches ship immediately from the
	// writer; partial batches ship on the FlushInterval tick.
	BatchEntries int
	// FlushInterval is the cadence of the background flusher that ships
	// partial batches and drives reconnects while the writer is idle
	// (0 = DefaultFlushInterval).
	FlushInterval time.Duration
	// Dial opens the transport; nil means net.Dial("tcp", addr) with
	// DialTimeout. Tests inject failing or cuttable transports here.
	Dial func(addr string) (net.Conn, error)
	// MaxAttempts bounds consecutive failed dial attempts before the
	// client gives up and fails the sink (0 = DefaultMaxAttempts).
	MaxAttempts int
	// BackoffBase is the first reconnect delay, doubled per consecutive
	// failure up to BackoffMax (0 = defaults).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// VerdictTimeout bounds how long Flush waits for the server's verdict
	// after Fin (0 = DefaultVerdictTimeout).
	VerdictTimeout time.Duration
	// Logf, when non-nil, receives one line per connection-level event.
	Logf func(format string, args ...any)
}

// Defaults for ClientOptions zero values.
const (
	DefaultClientWindow   = 1 << 14
	DefaultBatchEntries   = 256
	DefaultFlushInterval  = 2 * time.Millisecond
	DefaultMaxAttempts    = 8
	DefaultDialTimeout    = 5 * time.Second
	DefaultVerdictTimeout = 30 * time.Second
)

const (
	defaultBackoffBase = 50 * time.Millisecond
	defaultBackoffMax  = 2 * time.Second
)

// ClientStats is a point-in-time snapshot of a client's counters.
type ClientStats struct {
	// EntriesSent counts entries handed to the transport (retransmissions
	// after a reconnect count again).
	EntriesSent int64 `json:"entries_sent"`
	// EntriesAcked is the highest sequence number the server has
	// acknowledged.
	EntriesAcked int64 `json:"entries_acked"`
	// Buffered and PeakBuffered describe the resend buffer: entries
	// written by the log but not yet acknowledged. PeakBuffered never
	// exceeds the configured Window.
	Buffered     int   `json:"buffered"`
	PeakBuffered int   `json:"peak_buffered"`
	Reconnects   int64 `json:"reconnects"`
	DialFailures int64 `json:"dial_failures"`
}

// Client ships a wal.Log's entries to a vyrdd server and collects the
// final verdict. It implements wal.EntrySink: attach it with
// Log.AttachEntrySink and the log's sink goroutine becomes the shipping
// thread. WriteEntry never drops: it blocks while the resend window is
// full, chaining the server's backpressure through the wal window to the
// instrumented program itself.
//
// The resend buffer is what makes reconnection lossless: every written
// entry stays buffered until the server acks its sequence number, and a
// reconnecting client learns the server's resume point from the Welcome
// frame and retransmits exactly the unacked suffix.
type Client struct {
	opts ClientOptions

	// sendMu serializes batch transmission (the writer's threshold ships,
	// the flusher's partial ships, Flush's drain): the server treats an
	// out-of-order batch as a fatal sequence gap, so exactly one goroutine
	// may be collecting-and-writing at a time.
	sendMu sync.Mutex
	// batch and encBuf are ship's scratch buffers, reused across batches;
	// they are guarded by sendMu.
	batch  []event.Entry
	encBuf []byte

	mu   sync.Mutex
	cond *sync.Cond
	// buf holds unacked entries in sequence order; bufBase is the sequence
	// number of buf[0] (acked entries are pruned from the front). buf is a
	// view of store[off:]: acks advance off in O(1), and the active region
	// slides back to the front of store only when the tail runs out of
	// room, so the resend buffer never reallocates per window traversal.
	buf     []event.Entry
	store   []event.Entry
	off     int
	bufBase int64
	// sentSeq is the highest sequence number handed to the current
	// connection; rewound to the Welcome resume point on reconnect.
	sentSeq int64
	// connGen increments on every (re)connect so the shipper can tell a
	// stale connection's failure from the current one.
	connGen int64
	conn    net.Conn
	fw      *frameWriter
	session string
	// addr is the server currently dialed; it moves when a clustered
	// server answers the handshake with a redirect to the key's owner.
	addr    string
	failed  error
	closed  bool
	flusher bool

	verdictMu sync.Mutex
	verdict   *Verdict
	verdictCh chan struct{}

	stats struct {
		sent         int64
		acked        int64
		peakBuffered int
		reconnects   int64
		dialFailures int64
	}
}

// NewClient constructs a client; no connection is opened until the first
// entry (or Flush) needs one.
func NewClient(opts ClientOptions) (*Client, error) {
	if opts.Addr == "" && opts.Dial == nil {
		return nil, fmt.Errorf("remote: ClientOptions.Addr is required")
	}
	if opts.Hello.Spec == "" {
		return nil, fmt.Errorf("remote: ClientOptions.Hello.Spec is required")
	}
	if opts.Window <= 0 {
		opts.Window = DefaultClientWindow
	}
	if opts.BatchEntries <= 0 {
		opts.BatchEntries = DefaultBatchEntries
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = defaultBackoffBase
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = defaultBackoffMax
	}
	if opts.VerdictTimeout <= 0 {
		opts.VerdictTimeout = DefaultVerdictTimeout
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, DefaultDialTimeout)
		}
	}
	c := &Client{opts: opts, addr: opts.Addr, bufBase: 1, verdictCh: make(chan struct{})}
	c.session = opts.Session
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// Session returns the server-assigned session token (empty before the
// first handshake). A producer that persists it next to its log file gives
// its successor what ClientOptions.Session needs to resume the stream
// after a crash.
func (c *Client) Session() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// WriteEntry buffers one entry and ships it; it blocks while the resend
// window is full and returns the terminal error once the client has given
// up on the server. Entries must arrive in sequence order (the wal sink
// guarantees this).
func (c *Client) WriteEntry(e event.Entry) error {
	for {
		c.mu.Lock()
		if c.failed != nil {
			err := c.failed
			c.mu.Unlock()
			return err
		}
		if len(c.buf) < c.opts.Window {
			if want := c.bufBase + int64(len(c.buf)); e.Seq != want {
				if e.Seq < want {
					// Already buffered or acked: a resumed producer
					// replaying its recovered prefix. Skip silently.
					c.mu.Unlock()
					return nil
				}
				c.mu.Unlock()
				return fmt.Errorf("remote: out-of-order entry #%d (expected #%d)", e.Seq, want)
			}
			c.appendLocked(e)
			if n := len(c.buf); n > c.stats.peakBuffered {
				c.stats.peakBuffered = n
			}
			unsent := c.unsentLocked()
			c.startFlusherLocked()
			c.mu.Unlock()
			if unsent >= c.opts.BatchEntries {
				return c.ship(c.opts.BatchEntries)
			}
			return nil
		}
		if c.fw != nil {
			// Window full with a live connection: park until acks free
			// space (or the connection dies, which broadcasts too).
			c.cond.Wait()
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()
		// Window full with no connection: reconnect and retransmit now —
		// only acks for the resent suffix can free space.
		if err := c.ship(1); err != nil {
			return err
		}
	}
}

// unsentLocked counts buffered entries not yet handed to the current
// connection. Callers hold c.mu.
func (c *Client) unsentLocked() int {
	start := c.sentSeq + 1
	if start < c.bufBase {
		start = c.bufBase
	}
	return len(c.buf) - int(start-c.bufBase)
}

// startFlusherLocked spawns the background flusher once. It ships partial
// batches while the writer is between entries and drives reconnects while
// the writer is parked; it exits on verdict, terminal failure or Close.
func (c *Client) startFlusherLocked() {
	if c.flusher {
		return
	}
	c.flusher = true
	go func() {
		t := time.NewTicker(c.opts.FlushInterval)
		defer t.Stop()
		for {
			select {
			case <-c.verdictCh:
				return
			case <-t.C:
			}
			c.mu.Lock()
			stop := c.failed != nil || c.closed
			c.mu.Unlock()
			if stop {
				return
			}
			c.ship(1)
		}
	}()
}

// Flush completes the stream: ship everything buffered, send Fin, and wait
// for the server's verdict (bounded by VerdictTimeout). The wal calls it
// once, after the closed log's last entry has been written. A connection
// drop anywhere in the sequence retries the tail end-to-end.
func (c *Client) Flush() error {
	deadline := time.Now().Add(c.opts.VerdictTimeout)
	for {
		if err := c.ship(1); err != nil {
			return err
		}
		c.mu.Lock()
		err := c.failed
		fw := c.fw
		c.mu.Unlock()
		if err != nil {
			return err
		}
		if fw == nil {
			// ship only dials when entries are buffered; an empty log's
			// Fin still needs a session.
			if err := c.connect(); err != nil {
				return err
			}
			continue
		}
		if err := fw.writeFrame(frameFin, nil); err != nil {
			c.logf("remote: fin write failed, reconnecting: %v", err)
			c.dropConn(fw, err)
			continue
		}
		select {
		case <-c.verdictCh:
			return nil
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("remote: no verdict within %v", c.opts.VerdictTimeout)
		case <-c.connLost(fw):
			// Connection died while waiting; reconnect and re-fin.
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("remote: no verdict within %v", c.opts.VerdictTimeout)
		}
	}
}

// connLost returns a channel closed when the given writer's connection is
// no longer current (reader goroutine observed an error).
func (c *Client) connLost(fw *frameWriter) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		for {
			c.mu.Lock()
			cur := c.fw
			failed := c.failed != nil
			c.mu.Unlock()
			if cur != fw || failed {
				return
			}
			select {
			case <-c.verdictCh:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()
	return ch
}

// Verdict returns the server's final verdict, or nil if none arrived.
func (c *Client) Verdict() *Verdict {
	c.verdictMu.Lock()
	defer c.verdictMu.Unlock()
	return c.verdict
}

// Err returns the client's terminal failure, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{
		EntriesSent:  c.stats.sent,
		EntriesAcked: c.stats.acked,
		Buffered:     len(c.buf),
		PeakBuffered: c.stats.peakBuffered,
		Reconnects:   c.stats.reconnects,
		DialFailures: c.stats.dialFailures,
	}
}

// Close tears the connection down without waiting for a verdict; Flush is
// the graceful path.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn, c.fw = nil, nil
	c.cond.Broadcast()
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	return nil
}

// ship sends batches of buffered-but-unsent entries while at least min
// remain unsent, dialing a connection if entries are buffered and none is
// live. min=1 drains everything (Flush, the flusher tick, post-drop
// retransmission); min=BatchEntries ships only full batches (the writer's
// threshold path, which leaves the partial tail to the flusher).
func (c *Client) ship(min int) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	for {
		c.mu.Lock()
		if c.failed != nil {
			err := c.failed
			c.mu.Unlock()
			return err
		}
		if c.fw == nil {
			if len(c.buf) == 0 {
				c.mu.Unlock()
				return nil
			}
			// Buffered entries with no connection: reconnect (the
			// handshake rewinds sentSeq to the server's resume point, so
			// the sent-but-unacked suffix becomes unsent again).
			c.mu.Unlock()
			if err := c.connect(); err != nil {
				return err
			}
			continue
		}
		unsent := c.unsentLocked()
		if unsent < min || unsent == 0 {
			c.mu.Unlock()
			return nil
		}
		i := len(c.buf) - unsent
		n := unsent
		if n > c.opts.BatchEntries {
			n = c.opts.BatchEntries
		}
		if cap(c.batch) < n {
			c.batch = make([]event.Entry, n)
		}
		batch := c.batch[:n]
		copy(batch, c.buf[i:i+n])
		fw := c.fw
		gen := c.connGen
		c.mu.Unlock()

		payload := c.encBuf[:0]
		var err error
		for _, e := range batch {
			payload, err = event.AppendEntryFrame(payload, e)
			if err != nil {
				return c.fail(fmt.Errorf("remote: encode entry #%d: %w", e.Seq, err))
			}
		}
		c.encBuf = payload
		if err := fw.writeFrame(frameEntries, payload); err != nil {
			c.logf("remote: entries write failed, reconnecting: %v", err)
			c.dropConnGen(gen, err)
			continue
		}
		c.mu.Lock()
		if c.connGen == gen {
			if last := batch[len(batch)-1].Seq; last > c.sentSeq {
				c.sentSeq = last
			}
			c.stats.sent += int64(len(batch))
		}
		c.mu.Unlock()
	}
}

// maxRedirects bounds how many handshake redirects one connect follows
// before treating the loop as a cluster misconfiguration.
const maxRedirects = 4

// connect dials with exponential backoff, performs the handshake, rewinds
// the send position to the server's resume point, and starts the reader.
// A redirect reject (a clustered server naming the key's owner) moves the
// client's address and re-dials without burning a retry attempt.
func (c *Client) connect() error {
	backoff := c.opts.BackoffBase
	redirects := 0
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		if c.failed != nil {
			err := c.failed
			c.mu.Unlock()
			return err
		}
		if c.closed {
			c.mu.Unlock()
			return c.fail(fmt.Errorf("remote: client closed"))
		}
		if c.fw != nil {
			c.mu.Unlock()
			return nil // another caller connected first
		}
		session := c.session
		addr := c.addr
		c.mu.Unlock()

		conn, err := c.opts.Dial(addr)
		if err == nil {
			err = c.handshake(conn, session)
			if err == nil {
				return nil
			}
			conn.Close()
		} else {
			c.mu.Lock()
			c.stats.dialFailures++
			c.mu.Unlock()
		}
		if re, ok := err.(*rejectError); ok {
			if re.rej.Reason == RejectRedirect && re.rej.RedirectTo != "" && redirects < maxRedirects {
				redirects++
				c.logf("remote: redirected to %s (%d/%d)", re.rej.RedirectTo, redirects, maxRedirects)
				c.mu.Lock()
				c.addr = re.rej.RedirectTo
				c.mu.Unlock()
				attempt-- // a redirect is routing, not a failure
				continue
			}
			return c.fail(err) // the server said no; retrying won't help
		}
		c.logf("remote: connect attempt %d/%d failed: %v", attempt, c.opts.MaxAttempts, err)
		if attempt >= c.opts.MaxAttempts {
			return c.fail(fmt.Errorf("remote: giving up after %d attempts: %w", attempt, err))
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > c.opts.BackoffMax {
			backoff = c.opts.BackoffMax
		}
	}
}

// rejectError marks a server-side handshake refusal, which is terminal
// (after any redirect has been followed).
type rejectError struct{ rej Reject }

func (e *rejectError) Error() string { return "remote: server rejected session: " + e.rej.Error }

// HandshakeReject unwraps a client error into the server's Reject, if
// the error was a terminal handshake refusal. Callers distinguish a
// quota refusal (retry later) or a redirect loop from transport
// failures (fail over to another node).
func HandshakeReject(err error) (Reject, bool) {
	var re *rejectError
	if errors.As(err, &re) {
		return re.rej, true
	}
	return Reject{}, false
}

// handshake runs the preamble/Hello/Welcome exchange on a fresh
// connection, installs it as current and spawns its reader goroutine.
func (c *Client) handshake(conn net.Conn, session string) error {
	if err := writePreamble(conn); err != nil {
		return err
	}
	fw := newFrameWriter(conn)
	h := c.opts.Hello
	h.FormatVersion = event.FormatVersion
	h.Session = session
	h.Window = c.opts.Window
	if err := fw.writeJSON(frameHello, h); err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	typ, payload, err := readFrame(br)
	if err != nil {
		return err
	}
	switch typ {
	case frameWelcome:
	case frameReject:
		var rej Reject
		if json.Unmarshal(payload, &rej) == nil && rej.Error != "" {
			return &rejectError{rej: rej}
		}
		return &rejectError{rej: Reject{Error: "unspecified"}}
	default:
		return fmt.Errorf("remote: unexpected handshake frame %d", typ)
	}
	var w Welcome
	if err := json.Unmarshal(payload, &w); err != nil {
		return fmt.Errorf("remote: malformed welcome: %w", err)
	}

	c.mu.Lock()
	c.session = w.Session
	c.conn, c.fw = conn, fw
	c.connGen++
	gen := c.connGen
	if c.sentSeq != 0 || w.ResumeFrom != 0 {
		c.stats.reconnects++
	}
	// Rewind to the server's position: everything after ResumeFrom is
	// retransmitted from the resend buffer. The server must not be ahead
	// of our pruned buffer — it acked those entries, so it cannot be.
	c.sentSeq = w.ResumeFrom
	c.pruneLocked(w.ResumeFrom)
	c.mu.Unlock()
	c.logf("remote: connected, session %s, resume from #%d", w.Session, w.ResumeFrom)

	go c.readLoop(conn, br, fw, gen)
	return nil
}

// pruneLocked drops acked entries from the front of the resend buffer and
// wakes writers blocked on the window. Callers hold c.mu.
// appendLocked adds e to the resend buffer. Acked entries leave a growing
// gap at the front of store; the active region is copied back to the
// start only when the tail is exhausted, which makes the slide amortized
// O(1) per entry instead of O(window) per ack.
func (c *Client) appendLocked(e event.Entry) {
	if c.off > 0 && len(c.store) == cap(c.store) {
		n := copy(c.store[:len(c.buf)], c.buf)
		clear(c.store[n:]) // release references in the stale tail
		c.store = c.store[:n]
		c.off = 0
	}
	c.store = append(c.store, e)
	c.buf = c.store[c.off:]
}

func (c *Client) pruneLocked(acked int64) {
	if acked > c.stats.acked {
		c.stats.acked = acked
	}
	if drop := int(acked - c.bufBase + 1); drop > 0 {
		if drop > len(c.buf) {
			drop = len(c.buf)
		}
		clear(c.store[c.off : c.off+drop]) // release Args/Ret references
		c.off += drop
		c.buf = c.store[c.off:]
		if len(c.buf) == 0 {
			c.off = 0
			c.store = c.store[:0]
			c.buf = c.store
		}
		c.bufBase += int64(drop)
		c.cond.Broadcast()
	}
}

// readLoop consumes server frames (acks, the verdict) until the
// connection dies; a death before the verdict marks the connection stale
// so the next ship/Flush reconnects.
func (c *Client) readLoop(conn net.Conn, br *bufio.Reader, fw *frameWriter, gen int64) {
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			c.dropConnGen(gen, err)
			return
		}
		switch typ {
		case frameAck:
			seq, n := binary.Uvarint(payload)
			if n <= 0 {
				c.dropConnGen(gen, fmt.Errorf("remote: malformed ack"))
				return
			}
			c.mu.Lock()
			c.pruneLocked(int64(seq))
			c.mu.Unlock()
		case frameVerdict:
			var v Verdict
			if err := json.Unmarshal(payload, &v); err != nil {
				c.dropConnGen(gen, fmt.Errorf("remote: malformed verdict: %w", err))
				return
			}
			c.verdictMu.Lock()
			if c.verdict == nil {
				c.verdict = &v
				close(c.verdictCh)
			}
			c.verdictMu.Unlock()
			return
		default:
			c.dropConnGen(gen, fmt.Errorf("remote: unexpected frame %d", typ))
			return
		}
	}
}

// dropConn retires the connection behind fw (if still current).
func (c *Client) dropConn(fw *frameWriter, cause error) {
	c.mu.Lock()
	if c.fw == fw {
		c.retireLocked(cause)
	}
	c.mu.Unlock()
}

// dropConnGen retires the connection of generation gen (if still current).
func (c *Client) dropConnGen(gen int64, cause error) {
	c.mu.Lock()
	if c.connGen == gen && c.conn != nil {
		c.retireLocked(cause)
	}
	c.mu.Unlock()
}

// retireLocked closes and clears the current connection and wakes a
// writer parked on the window, which then drives the reconnect. Callers
// hold c.mu. The session token survives, so the next connect resumes.
func (c *Client) retireLocked(cause error) {
	_ = cause
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn, c.fw = nil, nil
	c.cond.Broadcast()
}

// fail records the terminal error and unblocks writers.
func (c *Client) fail(err error) error {
	c.mu.Lock()
	if c.failed == nil {
		c.failed = err
	} else {
		err = c.failed
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.fw = nil, nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	return err
}
