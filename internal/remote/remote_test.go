// Black-box tests of the remote verification subsystem: loopback
// round-trips, verdict parity with in-process checking, reconnect/resume
// under injected connection failures, end-to-end backpressure, drain
// semantics, and wire-level handshake conformance.
//
// Violating traces are crafted single-threaded (synthetic logs driven
// through probes or built entry-by-entry): the repository's injected bug
// subjects are intentional data races, and these tests must stay clean
// under -race.
package remote_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faultfs"
	"repro/internal/remote"
	"repro/internal/spec"
	"repro/internal/wal"
	"repro/vyrd"
)

// testRegistry serves the multiset spec (io mode; no replayer) and a
// deliberately slow variant for backpressure tests.
func testRegistry(delay time.Duration) *remote.Registry {
	r := remote.NewRegistry()
	if err := r.Register(remote.SpecFactory{
		Name:    "multiset",
		NewSpec: func() core.Spec { return spec.NewMultiset() },
	}); err != nil {
		panic(err)
	}
	if err := r.Register(remote.SpecFactory{
		Name:    "multiset-slow",
		NewSpec: func() core.Spec { return &slowSpec{Spec: spec.NewMultiset(), delay: delay} },
	}); err != nil {
		panic(err)
	}
	return r
}

// slowSpec delays every commit, so the session's checker falls behind and
// the window backpressure chain engages.
type slowSpec struct {
	core.Spec
	delay time.Duration
}

func (s *slowSpec) ApplyMutator(m string, a []event.Value, r event.Value) error {
	time.Sleep(s.delay)
	return s.Spec.ApplyMutator(m, a, r)
}

// startServer brings up a server on a loopback listener and tears it down
// with the test.
func startServer(tb testing.TB, opts remote.ServerOptions) (*remote.Server, string) {
	tb.Helper()
	if opts.Registry == nil {
		opts.Registry = testRegistry(0)
	}
	srv, err := remote.NewServer(opts)
	if err != nil {
		tb.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

// multisetTrace builds a single-threaded, well-formed log: n Insert
// executions (call, commit, return true), optionally ending with a LookUp
// of a never-inserted element returning true — an observer violation the
// specification must reject.
func multisetTrace(n int, violate bool) []event.Entry {
	var es []event.Entry
	add := func(e event.Entry) {
		e.Seq = int64(len(es) + 1)
		if e.Method != "" {
			e.Sym = event.InternSym(e.Method)
		}
		es = append(es, e)
	}
	for i := 0; i < n; i++ {
		x := i % 7
		add(event.Entry{Tid: 1, Kind: event.KindCall, Method: "Insert", Args: []event.Value{x}})
		add(event.Entry{Tid: 1, Kind: event.KindCommit, Method: "Insert"})
		add(event.Entry{Tid: 1, Kind: event.KindReturn, Method: "Insert", Ret: true})
	}
	if violate {
		add(event.Entry{Tid: 1, Kind: event.KindCall, Method: "LookUp", Args: []event.Value{999}})
		add(event.Entry{Tid: 1, Kind: event.KindReturn, Method: "LookUp", Ret: true})
	}
	return es
}

// localSummary checks the trace in process, the reference verdict every
// remote path must reproduce.
func localSummary(t *testing.T, trace []event.Entry) core.Summary {
	t.Helper()
	rep, err := core.CheckEntries(trace, spec.NewMultiset(), core.WithMode(core.ModeIO))
	if err != nil {
		t.Fatalf("local check: %v", err)
	}
	return rep.Summary()
}

// shipAll writes a whole trace through a client and flushes.
func shipAll(t *testing.T, c *remote.Client, trace []event.Entry) {
	t.Helper()
	for _, e := range trace {
		if err := c.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry #%d: %v", e.Seq, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestLoopbackVerdictParity(t *testing.T) {
	_, addr := startServer(t, remote.ServerOptions{})
	for _, violate := range []bool{false, true} {
		trace := multisetTrace(50, violate)
		cl, err := remote.NewClient(remote.ClientOptions{
			Addr:  addr,
			Hello: remote.Hello{Spec: "multiset", Mode: "io"},
		})
		if err != nil {
			t.Fatal(err)
		}
		shipAll(t, cl, trace)
		v := cl.Verdict()
		if v == nil {
			t.Fatalf("violate=%v: no verdict", violate)
		}
		if v.Drained {
			t.Fatalf("violate=%v: verdict marked drained on a clean fin", violate)
		}
		if v.Ok() == violate {
			t.Fatalf("violate=%v: verdict ok=%v", violate, v.Ok())
		}
		// The remote verdict must be the in-process one: same summary
		// after the wire round trip.
		got := v.Report().Summary()
		if want := localSummary(t, trace); got != want {
			t.Errorf("violate=%v: remote summary %+v != local %+v", violate, got, want)
		}
		if violate {
			if v.Report().First().Kind != core.ViolationObserver {
				t.Errorf("violation kind %v survived the wire, want observer", v.Report().First().Kind)
			}
		}
		if st := cl.Stats(); st.EntriesAcked != int64(len(trace)) {
			t.Errorf("violate=%v: acked %d of %d entries", violate, st.EntriesAcked, len(trace))
		}
	}
}

func TestHandshakeRejectsOldFormatVersion(t *testing.T) {
	_, addr := startServer(t, remote.ServerOptions{})
	// Speak the wire protocol by hand: a conforming preamble, then a Hello
	// declaring the version-1 (gob) log format. The server must answer
	// with an explicit version-mismatch Reject, not a mid-stream decode
	// error.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("VYRDRPC\x01")); err != nil {
		t.Fatal(err)
	}
	hello := []byte(`{"format_version":1,"spec":"multiset"}`)
	frame := append([]byte{1}, binary.AppendUvarint(nil, uint64(len(hello)))...)
	if _, err := conn.Write(append(frame, hello...)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	typ, err := br.ReadByte()
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if typ != 11 { // frameReject
		t.Fatalf("reply frame type %d, want 11 (reject)", typ)
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatal(err)
	}
	var rej remote.Reject
	if err := json.Unmarshal(payload, &rej); err != nil {
		t.Fatalf("reject payload: %v", err)
	}
	if !strings.Contains(rej.Error, "version") || !strings.Contains(rej.Error, "1") {
		t.Errorf("reject error %q does not name the version mismatch", rej.Error)
	}
}

func TestClientRejectIsTerminal(t *testing.T) {
	_, addr := startServer(t, remote.ServerOptions{})
	var mu sync.Mutex
	dials := 0
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: "no-such-spec"},
		Dial: func(addr string) (net.Conn, error) {
			mu.Lock()
			dials++
			mu.Unlock()
			return net.Dial("tcp", addr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Flush()
	if err == nil || !strings.Contains(err.Error(), "no-such-spec") {
		t.Fatalf("flush err = %v, want server rejection naming the spec", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if dials != 1 {
		t.Errorf("client dialed %d times after a rejection, want 1 (rejects are terminal)", dials)
	}
}

// faultDialer injects dial failures and tracks live connections so tests
// can cut them mid-stream.
type faultDialer struct {
	mu       sync.Mutex
	failNext int
	dials    int
	conns    []net.Conn
}

func (d *faultDialer) dial(addr string) (net.Conn, error) {
	d.mu.Lock()
	d.dials++
	if d.failNext > 0 {
		d.failNext--
		d.mu.Unlock()
		return nil, errors.New("injected dial failure")
	}
	d.mu.Unlock()
	c, err := net.Dial("tcp", addr)
	if err == nil {
		d.mu.Lock()
		d.conns = append(d.conns, c)
		d.mu.Unlock()
	}
	return c, err
}

// cut closes the most recently dialed connection.
func (d *faultDialer) cut() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.conns); n > 0 {
		d.conns[n-1].Close()
	}
}

func (d *faultDialer) dialCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

func TestClientReconnectResumesLosslessly(t *testing.T) {
	_, addr := startServer(t, remote.ServerOptions{AckEvery: 8})
	trace := multisetTrace(400, true)
	d := &faultDialer{failNext: 2} // exercise the backoff path first
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:         addr,
		Hello:        remote.Hello{Spec: "multiset", Mode: "io"},
		Dial:         d.dial,
		Window:       64,
		BatchEntries: 16,
		BackoffBase:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := len(trace) / 2
	for _, e := range trace[:half] {
		if err := cl.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry #%d: %v", e.Seq, err)
		}
	}
	// Wait for the server to ack part of the stream, then cut the
	// connection under the client.
	deadline := time.Now().Add(5 * time.Second)
	for cl.Stats().EntriesAcked == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cl.Stats().EntriesAcked == 0 {
		t.Fatal("no acks before the cut")
	}
	d.cut()
	for _, e := range trace[half:] {
		if err := cl.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry #%d after cut: %v", e.Seq, err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	v := cl.Verdict()
	if v == nil {
		t.Fatal("no verdict")
	}
	// Lossless resume: the verdict over the reassembled stream equals the
	// in-process verdict over the original trace — nothing was lost or
	// double-applied across the drop.
	if got, want := v.Report().Summary(), localSummary(t, trace); got != want {
		t.Errorf("post-reconnect summary %+v != local %+v", got, want)
	}
	st := cl.Stats()
	if st.DialFailures != 2 {
		t.Errorf("DialFailures = %d, want 2", st.DialFailures)
	}
	if st.Reconnects == 0 {
		t.Error("no reconnect recorded despite the cut")
	}
	if st.EntriesAcked != int64(len(trace)) {
		t.Errorf("acked %d of %d", st.EntriesAcked, len(trace))
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	d := &faultDialer{failNext: 1 << 30}
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:        "127.0.0.1:1", // never reached: the injected dialer fails first
		Hello:       remote.Hello{Spec: "multiset"},
		Dial:        d.dial,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.WriteEntry(multisetTrace(1, false)[0])
	if err == nil {
		// The first entry may buffer below the ship threshold; the
		// failure must surface by Flush at the latest.
		err = cl.Flush()
	}
	if err == nil || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err = %v, want terminal give-up after 3 attempts", err)
	}
	if got := d.dialCount(); got != 3 {
		t.Errorf("dialed %d times, want 3", got)
	}
	if cl.Err() == nil {
		t.Error("terminal failure not recorded on the client")
	}
}

func TestBackpressureBoundsClientBuffer(t *testing.T) {
	// A slow spec makes the session checker the bottleneck: the server's
	// window blocks ingest, acks stop, the client's window fills, and
	// WriteEntry blocks — end to end, peak client memory stays at the
	// configured window.
	srv, addr := startServer(t, remote.ServerOptions{
		Registry: testRegistry(50 * time.Microsecond),
		Window:   16,
		AckEvery: 1,
	})
	const window = 8
	trace := multisetTrace(200, false)
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:          addr,
		Hello:         remote.Hello{Spec: "multiset-slow", Mode: "io"},
		Window:        window,
		BatchEntries:  4,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, cl, trace)
	v := cl.Verdict()
	if v == nil || !v.Ok() {
		t.Fatalf("verdict = %+v, want ok", v)
	}
	st := cl.Stats()
	if st.PeakBuffered > window {
		t.Errorf("peak buffered %d entries exceeds the %d-entry window", st.PeakBuffered, window)
	}
	// The chain must actually have engaged: the server session's log saw
	// producer backpressure waits.
	m := srv.Metrics()
	if len(m.Finished) == 0 {
		t.Fatal("no finished session in metrics")
	}
	if m.Finished[0].Log.BlockedWaits == 0 {
		t.Error("server session log recorded no blocked waits; backpressure never engaged")
	}
}

func TestShutdownDrainsInFlightSessions(t *testing.T) {
	srv, addr := startServer(t, remote.ServerOptions{})
	trace := multisetTrace(120, true)
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:          addr,
		Hello:         remote.Hello{Spec: "multiset", Mode: "io"},
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range trace {
		if err := cl.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry: %v", err)
		}
	}
	// No Fin: the session stays in flight. Wait until the server has
	// ingested the whole prefix, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().EntriesTotal < int64(len(trace)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.Metrics().EntriesTotal; got < int64(len(trace)) {
		t.Fatalf("server ingested %d of %d entries", got, len(trace))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	srv.Shutdown(ctx)
	// The force-finished verdict is pushed to the client's live
	// connection: it must arrive, be marked Drained, and match in-process
	// checking of exactly the ingested prefix.
	deadline = time.Now().Add(5 * time.Second)
	var v *remote.Verdict
	for v == nil && time.Now().Before(deadline) {
		v = cl.Verdict()
		time.Sleep(time.Millisecond)
	}
	if v == nil {
		t.Fatal("no drained verdict delivered")
	}
	if !v.Drained {
		t.Error("verdict not marked Drained")
	}
	if got, want := v.Report().Summary(), localSummary(t, trace); got != want {
		t.Errorf("drained summary %+v != local %+v", got, want)
	}
	// A draining server refuses new sessions.
	cl2, err := remote.NewClient(remote.ClientOptions{
		Addr:        addr,
		Hello:       remote.Hello{Spec: "multiset"},
		MaxAttempts: 1,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Flush(); err == nil {
		t.Error("new session accepted by a drained server")
	}
}

func TestOpsSurface(t *testing.T) {
	srv, addr := startServer(t, remote.ServerOptions{})
	web := httptest.NewServer(remote.OpsHandler(srv))
	defer web.Close()

	var h remote.Health
	getJSON(t, web.URL+"/healthz", http.StatusOK, &h)
	if !h.Ok || h.ActiveSessions != 0 || h.Specs == 0 {
		t.Errorf("healthz = %+v", h)
	}

	trace := multisetTrace(40, false)
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: "multiset", Mode: "io"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, cl, trace)

	var m remote.Metrics
	getJSON(t, web.URL+"/metrics", http.StatusOK, &m)
	if m.SessionsFinished != 1 || m.EntriesTotal != int64(len(trace)) || m.ViolationsTotal != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if len(m.Finished) != 1 {
		t.Fatalf("finished sessions = %d, want 1", len(m.Finished))
	}
	fin := m.Finished[0]
	if fin.Spec != "multiset" || fin.Entries != int64(len(trace)) || len(fin.Reports) != 1 {
		t.Errorf("finished session = %+v", fin)
	}
	if !fin.Reports[0].Report.Ok || fin.Reports[0].Report.EntriesProcessed != int64(len(trace)) {
		t.Errorf("finished report = %+v", fin.Reports[0].Report)
	}

	// Draining flips /healthz to 503.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	getJSON(t, web.URL+"/healthz", http.StatusServiceUnavailable, &h)
	if h.Ok || !h.Draining {
		t.Errorf("healthz after drain = %+v", h)
	}
}

func getJSON(t *testing.T, url string, wantCode int, into any) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer r.Body.Close()
	if r.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, r.StatusCode, wantCode)
	}
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestVyrdFacadeRemote drives the public surface: an instrumented,
// probe-logged run whose log ships through vyrd.AttachRemote, exactly as
// the README quickstart shows.
func TestVyrdFacadeRemote(t *testing.T) {
	_, addr := startServer(t, remote.ServerOptions{})

	run := func(violate bool) (*vyrd.RemoteSink, int) {
		log := vyrd.NewLog(vyrd.LevelIO)
		sink, err := log.AttachRemote(vyrd.RemoteOptions{
			Addr: addr, Spec: "multiset", Mode: "io",
		})
		if err != nil {
			t.Fatal(err)
		}
		p := log.NewProbe()
		for i := 0; i < 30; i++ {
			inv := p.Call("Insert", i%5)
			inv.Commit("")
			inv.Return(true)
		}
		if violate {
			inv := p.Call("LookUp", 999)
			inv.Return(true)
		}
		n := log.Len()
		log.Close() // drains the sink and waits for the verdict
		if err := log.SinkErr(); err != nil {
			t.Fatalf("sink error: %v", err)
		}
		return sink, n
	}

	sink, n := run(false)
	v := sink.Verdict()
	if v == nil || !v.Ok() {
		t.Fatalf("clean run verdict = %+v", v)
	}
	if st := sink.Stats(); st.EntriesAcked != int64(n) {
		t.Errorf("acked %d of %d entries", st.EntriesAcked, n)
	}

	sink, _ = run(true)
	v = sink.Verdict()
	if v == nil || v.Ok() {
		t.Fatalf("violating run verdict = %+v", v)
	}
	if v.Report().First().Kind != core.ViolationObserver {
		t.Errorf("violation kind = %v, want observer", v.Report().First().Kind)
	}
}

// TestClientResumesCrashedSessionFromRecoveredLog is the end-to-end
// crash-resume story: a producer persists its log locally through a
// fault-injected file AND ships it to vyrdd; the process dies mid-stream
// (the client torn down without Fin, the file torn mid-frame); a successor
// recovers the local log, reconnects with the session token the
// predecessor obtained, and replays the recovered entries from sequence 1.
// The server's sequence-number dup-skip makes the replay idempotent, and
// the resumed session's verdict must equal in-process checking of exactly
// the recovered prefix — including the violation the crash failed to hide.
func TestClientResumesCrashedSessionFromRecoveredLog(t *testing.T) {
	_, addr := startServer(t, remote.ServerOptions{AckEvery: 4})

	// A violating head followed by more clean activity, so the observer
	// violation lands inside the recovered prefix, not in the torn tail.
	trace := multisetTrace(40, true)
	extra := multisetTrace(80, false)
	for i := range extra {
		extra[i].Seq = int64(len(trace) + i + 1)
	}
	trace = append(trace, extra...)

	// Encode the stream once to learn its frame boundaries, then plant the
	// crash point two bytes into the frame at three quarters of the trace:
	// past everything the first client ships, and guaranteed mid-frame
	// (every frame is at least five bytes), so recovery has a real torn
	// tail to drop.
	var sized bytes.Buffer
	enc := event.NewEncoder(&sized)
	var bounds []int
	for _, e := range trace {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, sized.Len())
	}
	crashAt := int64(bounds[len(bounds)*3/4] + 2)

	// First life: the whole trace goes to the local log through the
	// faulty file, which silently drops every byte past crashAt — the
	// page cache the machine lost. The first half also ships remotely.
	mem := faultfs.NewMemFS()
	ffs := faultfs.New(mem, faultfs.Config{CrashAtByte: crashAt})
	f, err := ffs.Create("producer.log")
	if err != nil {
		t.Fatal(err)
	}
	fenc := event.NewEncoder(f)
	for _, e := range trace {
		if err := fenc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cl1, err := remote.NewClient(remote.ClientOptions{
		Addr:         addr,
		Hello:        remote.Hello{Spec: "multiset", Mode: "io"},
		BatchEntries: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := len(trace) / 2
	for _, e := range trace[:half] {
		if err := cl1.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry #%d: %v", e.Seq, err)
		}
	}
	// Wait until the session exists server-side (handshake done, some
	// entries acked), then crash: Close without Flush — no Fin, no
	// verdict, the server keeps the session open for resumption.
	deadline := time.Now().Add(5 * time.Second)
	for (cl1.Session() == "" || cl1.Stats().EntriesAcked == 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	session := cl1.Session()
	if session == "" || cl1.Stats().EntriesAcked == 0 {
		t.Fatal("first client never established a session")
	}
	cl1.Close()

	// Successor: recover the torn local log in place.
	recovered, rep, err := wal.RecoverPath(mem, "producer.log")
	if err != nil {
		t.Fatalf("RecoverPath: %v", err)
	}
	if rep.Clean() || !rep.Truncated {
		t.Fatalf("expected a torn tail, got recovery report: %v", rep)
	}
	// The parity assertion below needs the recovered prefix to cover
	// everything the server already ingested; the 3/4 crash point vs the
	// half-trace ship guarantees it with a wide margin.
	if rep.LastSeq < int64(half) {
		t.Fatalf("recovered only %d entries, fewer than the %d shipped before the crash", rep.LastSeq, half)
	}
	want := localSummary(t, recovered)
	if want.TotalViolations == 0 {
		t.Fatal("recovered prefix lost the violation; crash point planted wrong")
	}

	// Second life: resume with the predecessor's token and replay the
	// recovered entries from sequence 1 — idempotent by dup-skip on both
	// ends — then Fin for the verdict.
	cl2, err := remote.NewClient(remote.ClientOptions{
		Addr:         addr,
		Hello:        remote.Hello{Spec: "multiset", Mode: "io"},
		Session:      session,
		BatchEntries: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, cl2, recovered)
	if got := cl2.Session(); got != session {
		t.Errorf("resumed client session %q, want %q", got, session)
	}
	v := cl2.Verdict()
	if v == nil {
		t.Fatal("no verdict after resume")
	}
	// The resumed verdict covers exactly the recovered prefix: same
	// summary as checking the recovered entries in process, and the
	// observer violation survived crash, recovery and resume.
	if got := v.Report().Summary(); got != want {
		t.Errorf("resumed summary %+v != local recovered-prefix summary %+v", got, want)
	}
	if first := v.Report().First(); first == nil || first.Kind != core.ViolationObserver {
		t.Errorf("resumed verdict lost the observer violation: %+v", first)
	}
	if st := cl2.Stats(); st.EntriesAcked != rep.LastSeq {
		t.Errorf("resumed client acked %d entries, want %d (the recovered prefix)", st.EntriesAcked, rep.LastSeq)
	}
}

// BenchmarkRemoteLoopback measures end-to-end remote verification
// throughput over loopback TCP: encode, ship, decode, ingest into the
// session log, check, verdict. Compare entries/sec against the offline
// binary-sequential replay numbers in EXPERIMENTS.md.
func BenchmarkRemoteLoopback(b *testing.B) {
	_, addr := startServer(b, remote.ServerOptions{})
	trace := multisetTrace(20000, false) // 60000 entries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := remote.NewClient(remote.ClientOptions{
			Addr:         addr,
			Hello:        remote.Hello{Spec: "multiset", Mode: "io"},
			Window:       1 << 15,
			BatchEntries: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range trace {
			if err := cl.WriteEntry(e); err != nil {
				b.Fatal(err)
			}
		}
		if err := cl.Flush(); err != nil {
			b.Fatal(err)
		}
		if v := cl.Verdict(); v == nil || !v.Ok() {
			b.Fatalf("verdict = %+v", v)
		}
	}
	b.StopTimer()
	total := float64(len(trace)) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "entries/sec")
}
