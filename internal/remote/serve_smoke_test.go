package remote_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/blinkstore"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/remote"
	"repro/vyrd"
)

// TestServeSmokeComposed is the `make serve-smoke` end-to-end check: a real
// concurrent harness run of the composed BLinkTree-over-Store subject, its
// live log shipped over loopback TCP to a vyrdd-shaped server running the
// production spec registry, checked modularly (one pipeline per module),
// with the remote verdict compared module-by-module against offline
// in-process checking of the same log.
func TestServeSmokeComposed(t *testing.T) {
	srv, err := remote.NewServer(remote.ServerOptions{Registry: bench.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	log := vyrd.NewLog(vyrd.LevelView)
	sink, err := log.AttachRemote(vyrd.RemoteOptions{
		Addr:    ln.Addr().String(),
		Spec:    "BLinkTree+Store",
		Modular: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := harness.RunOnLog(blinkstore.ComposedTarget(4, blinkstore.BugNone), harness.Config{
		Threads: 4, OpsPerThread: 100, KeyPool: 32, Seed: 11, Level: vyrd.LevelView,
	}, log)
	log.Close()
	if err := log.SinkErr(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	v := sink.Verdict()
	if v == nil {
		t.Fatal("no verdict")
	}
	if !v.Ok() {
		for _, mr := range v.Reports {
			t.Logf("%s:\n%s", mr.Module, mr.Report)
		}
		t.Fatal("remote composed check reported violations on a correct subject")
	}
	if len(v.Reports) != 2 {
		t.Fatalf("got %d module reports, want 2 (tree, store)", len(v.Reports))
	}

	offline, err := core.CheckEntriesMulti(res.Log.Snapshot(), blinkstore.Modules()...)
	if err != nil {
		t.Fatal(err)
	}
	remoteByModule := map[string]core.Summary{}
	for _, mr := range v.Reports {
		remoteByModule[mr.Module] = mr.Report.Summary()
	}
	for _, mr := range offline {
		got, ok := remoteByModule[mr.Module]
		if !ok {
			t.Errorf("module %q missing from remote verdict", mr.Module)
			continue
		}
		if want := mr.Report.Summary(); got != want {
			t.Errorf("module %q: remote summary %+v != offline %+v", mr.Module, got, want)
		}
	}
}
