package remote

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// OpsHandler is the server's live operations surface, served over plain
// net/http:
//
//	GET /healthz — liveness: ok, draining flag, uptime, active sessions
//	GET /metrics — counters: totals plus one object per live session
//	  (entries ingested, entries/sec, verifier lag, retained window
//	  bytes, the session log's pipeline stats), the checker-pool gauges
//	  when the scheduler is on, per-tenant quota counters, and the
//	  recently finished sessions with their report summaries
//
// /metrics defaults to JSON and serves Prometheus text exposition when
// asked — `GET /metrics?format=prom`, or an Accept header preferring
// text/plain (what a Prometheus scraper sends). /healthz answers 503
// while draining so load balancers stop routing new work at a server
// that will not accept it.
func OpsHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		code := http.StatusOK
		if !h.Ok {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsProm(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(PromText(s.Metrics())))
			return
		}
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return mux
}

// wantsProm decides the exposition format: an explicit format=prom
// query wins; otherwise an Accept header that prefers text/plain (and
// does not ask for JSON) selects Prometheus text.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// PromText renders a metrics snapshot in the Prometheus text exposition
// format (version 0.0.4): the server totals, the scheduler pool gauges
// when present, and the per-tenant counters labeled by tenant token.
func PromText(m Metrics) string {
	var b strings.Builder
	g := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	c := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	g("vyrd_uptime_seconds", "Seconds since the server started.", m.UptimeSeconds)
	g("vyrd_sessions_active", "Live verification sessions.", float64(m.SessionsActive))
	c("vyrd_sessions_started_total", "Sessions ever started.", float64(m.SessionsStarted))
	c("vyrd_sessions_finished_total", "Sessions finished with a verdict.", float64(m.SessionsFinished))
	c("vyrd_entries_total", "Log entries ingested across all sessions.", float64(m.EntriesTotal))
	c("vyrd_violations_total", "Refinement violations across all verdicts.", float64(m.ViolationsTotal))

	var windowBytes int64
	for _, sm := range m.Sessions {
		windowBytes += sm.WindowBytes
	}
	g("vyrd_window_bytes", "Retained window memory across live session logs.", float64(windowBytes))

	if m.Sched != nil {
		st := *m.Sched
		g("vyrd_sched_workers", "Checker pool size.", float64(st.Workers))
		g("vyrd_sched_busy_workers", "Workers currently mid-slice.", float64(st.Busy))
		g("vyrd_sched_runnable_sessions", "Sessions queued with pending entries.", float64(st.Runnable))
		g("vyrd_sched_tasks", "Live scheduled sessions.", float64(st.Tasks))
		g("vyrd_sched_pool_utilization", "Busy fraction of the checker pool (0..1).", st.Utilization())
		c("vyrd_sched_slices_total", "Cooperative time slices executed.", float64(st.Slices))
		c("vyrd_sched_entries_fed_total", "Entries fed through checker engines.", float64(st.EntriesFed))
		c("vyrd_sched_tasks_finished_total", "Scheduled sessions drained to a verdict.", float64(st.Finished))
	}

	if len(m.Tenants) > 0 {
		family := func(name, typ, help string) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		}
		// %q escapes backslashes, quotes and newlines exactly as the
		// exposition format requires for label values.
		row := func(name, tenant string, v float64) {
			fmt.Fprintf(&b, "%s{tenant=%q} %g\n", name, tenant, v)
		}
		family("vyrd_tenant_sessions", "gauge", "Live sessions per tenant.")
		for _, t := range m.Tenants {
			row("vyrd_tenant_sessions", t.Tenant, float64(t.Sessions))
		}
		family("vyrd_tenant_sessions_total", "counter", "Sessions ever admitted per tenant.")
		for _, t := range m.Tenants {
			row("vyrd_tenant_sessions_total", t.Tenant, float64(t.SessionsTotal))
		}
		family("vyrd_tenant_rejected_total", "counter", "Session admissions refused by quota per tenant.")
		for _, t := range m.Tenants {
			row("vyrd_tenant_rejected_total", t.Tenant, float64(t.Rejected))
		}
		family("vyrd_tenant_throttle_waits_total", "counter", "Ingest pauses served as backpressure per tenant.")
		for _, t := range m.Tenants {
			row("vyrd_tenant_throttle_waits_total", t.Tenant, float64(t.ThrottleWaits))
		}
		family("vyrd_tenant_entries_total", "counter", "Entries ingested per tenant.")
		for _, t := range m.Tenants {
			row("vyrd_tenant_entries_total", t.Tenant, float64(t.Entries))
		}
		family("vyrd_tenant_window_bytes", "gauge", "Retained window memory per tenant.")
		for _, t := range m.Tenants {
			row("vyrd_tenant_window_bytes", t.Tenant, float64(t.WindowBytes))
		}
	}
	return b.String()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
