package remote

import (
	"encoding/json"
	"net/http"
)

// OpsHandler is the server's live operations surface, served over plain
// net/http:
//
//	GET /healthz — liveness: ok, draining flag, uptime, active sessions
//	GET /metrics — counters: totals plus one object per live session
//	  (entries ingested, entries/sec, verifier lag, the session log's
//	  pipeline stats) and the recently finished sessions with their
//	  report summaries
//
// Both endpoints return JSON; /healthz answers 503 while draining so load
// balancers stop routing new work at a server that will not accept it.
func OpsHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		code := http.StatusOK
		if !h.Ok {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
