// Fleet-tier tests: tenant quotas enforced as backpressure, consistent-
// hash routing with client-side redirect, kill-one-node failover onto the
// journal-replay path, and the session-supersede attach race.
package remote_test

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/fleet"
	"repro/internal/fleet/failover"
	"repro/internal/remote"
)

// TestTenantSessionQuota pins admission control: a tenant at its
// MaxSessions cap gets an explicit tenant-quota reject (not a hang, not a
// protocol error), other tenants are unaffected, and finishing a session
// frees the slot.
func TestTenantSessionQuota(t *testing.T) {
	srv, addr := startServer(t, remote.ServerOptions{
		Quotas: fleet.Quotas{MaxSessions: 1},
	})

	trace := multisetTrace(10, false)
	cl1, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: "multiset", Mode: "io", Tenant: "acme"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl1.WriteEntry(trace[0]); err != nil {
		t.Fatal(err)
	}
	waitSession(t, cl1)

	// Same tenant, second concurrent session: rejected by quota, and the
	// reject names the machine-readable reason so clients can route.
	cl2, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: "multiset", Mode: "io", Tenant: "acme"},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cl2.Flush()
	if err == nil {
		t.Fatal("second session admitted past MaxSessions=1")
	}
	rej, ok := remote.HandshakeReject(err)
	if !ok || rej.Reason != remote.RejectQuota {
		t.Fatalf("want reject reason %q, got %v", remote.RejectQuota, err)
	}

	// A different tenant has its own cap.
	cl3, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: "multiset", Mode: "io", Tenant: "other"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, cl3, trace)
	if v := cl3.Verdict(); v == nil || !v.Ok() {
		t.Fatalf("other tenant's verdict: %v", v)
	}

	// Finishing acme's live session frees the slot.
	shipAll(t, cl1, trace[1:])
	if v := cl1.Verdict(); v == nil || !v.Ok() {
		t.Fatalf("first session verdict: %v", v)
	}
	cl4, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: "multiset", Mode: "io", Tenant: "acme"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, cl4, trace)
	if v := cl4.Verdict(); v == nil || !v.Ok() {
		t.Fatalf("post-release verdict: %v", v)
	}

	var acme *fleet.TenantMetrics
	for _, tm := range srv.Metrics().Tenants {
		if tm.Tenant == "acme" {
			tm := tm
			acme = &tm
		}
	}
	if acme == nil || acme.Rejected != 1 || acme.SessionsTotal != 2 {
		t.Fatalf("acme tenant metrics: %+v", acme)
	}
}

// TestTenantRateQuotaThrottles pins the entries/sec quota: a tenant
// streaming far above its rate is slowed by delayed acks — the session
// survives, the verdict is byte-identical to the unthrottled run, and the
// throttle counter records the enforcement.
func TestTenantRateQuotaThrottles(t *testing.T) {
	srv, addr := startServer(t, remote.ServerOptions{
		Quotas:   fleet.Quotas{MaxEntriesPerSec: 3000},
		AckEvery: 16,
	})
	trace := multisetTrace(1500, false) // 4500 entries, ~1.5x the 1s burst
	want := localSummary(t, trace)

	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: "multiset", Mode: "io", Tenant: "throttled"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, cl, trace)
	v := cl.Verdict()
	if v == nil || len(v.Reports) != 1 {
		t.Fatalf("verdict: %v", v)
	}
	if got := v.Reports[0].Report.Summary(); got != want {
		t.Fatalf("throttled verdict diverged:\ngot:  %+v\nwant: %+v", got, want)
	}

	throttled := false
	for _, tm := range srv.Metrics().Tenants {
		if tm.Tenant == "throttled" && tm.ThrottleWaits > 0 {
			throttled = true
		}
	}
	if !throttled {
		t.Fatal("rate quota never engaged (ThrottleWaits == 0)")
	}
}

// TestTenantWindowQuotaThrottles pins the window-memory quota: with a
// deliberately slow checker the tenant's retained window grows past its
// byte budget and ingest pauses until the checker catches up — verdict
// unchanged, throttle counted, and the per-session window accounting that
// the quota sums over is visible in the metrics.
func TestTenantWindowQuotaThrottles(t *testing.T) {
	srv, addr := startServer(t, remote.ServerOptions{
		Registry: testRegistry(200 * time.Microsecond),
		Quotas:   fleet.Quotas{MaxWindowBytes: 4 << 10},
		AckEvery: 8,
	})
	trace := multisetTrace(400, false)
	want := localSummary(t, trace)

	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: "multiset-slow", Mode: "io", Tenant: "memhog"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, cl, trace)
	v := cl.Verdict()
	if v == nil || len(v.Reports) != 1 {
		t.Fatalf("verdict: %v", v)
	}
	got := v.Reports[0].Report.Summary()
	// The slow spec only changes timing; its verdict fields must match
	// the plain multiset run.
	got.Mode = want.Mode
	if got != want {
		t.Fatalf("window-throttled verdict diverged:\ngot:  %+v\nwant: %+v", got, want)
	}
	throttled := false
	for _, tm := range srv.Metrics().Tenants {
		if tm.Tenant == "memhog" && tm.ThrottleWaits > 0 {
			throttled = true
		}
	}
	if !throttled {
		t.Fatal("window quota never engaged (ThrottleWaits == 0)")
	}
}

// startCluster brings up n routed vyrdd nodes whose Cluster list carries
// the real loopback addresses (listeners first, servers second).
func startCluster(tb testing.TB, n int) ([]*remote.Server, []string, []net.Listener) {
	tb.Helper()
	lns := make([]net.Listener, n)
	nodes := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		lns[i] = ln
		nodes[i] = ln.Addr().String()
	}
	srvs := make([]*remote.Server, n)
	for i := range srvs {
		srv, err := remote.NewServer(remote.ServerOptions{
			Registry: testRegistry(0),
			Cluster:  nodes,
			Self:     nodes[i],
			// The failover test abandons a session on the killed primary;
			// don't let its cleanup drain wait the default deadline for a
			// Fin that will never come.
			DrainTimeout: 200 * time.Millisecond,
		})
		if err != nil {
			tb.Fatal(err)
		}
		go srv.Serve(lns[i])
		srvs[i] = srv
	}
	tb.Cleanup(func() {
		for _, srv := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			srv.Shutdown(ctx)
			cancel()
		}
	})
	return srvs, nodes, lns
}

// keyOwnedBy finds a session key the cluster ring assigns to the given
// node.
func keyOwnedBy(tb testing.TB, nodes []string, owner string) string {
	tb.Helper()
	ring, err := fleet.NewRing(nodes, 0)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if ring.Owner(key) == owner {
			return key
		}
	}
	tb.Fatalf("no key owned by %s in 10000 tries", owner)
	return ""
}

// TestClusterRedirect pins client-side routing: a keyed session dialed at
// the wrong node gets a redirect reject naming the owner, the client
// follows it transparently, and the session runs (and finishes) on the
// owner only.
func TestClusterRedirect(t *testing.T) {
	srvs, nodes, _ := startCluster(t, 2)
	key := keyOwnedBy(t, nodes, nodes[1]) // owned by node 1, dialed at node 0

	trace := multisetTrace(30, false)
	want := localSummary(t, trace)
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:  nodes[0],
		Hello: remote.Hello{Spec: "multiset", Mode: "io", Key: key},
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, cl, trace)
	v := cl.Verdict()
	if v == nil || len(v.Reports) != 1 {
		t.Fatalf("verdict: %v", v)
	}
	if got := v.Reports[0].Report.Summary(); got != want {
		t.Fatalf("routed verdict diverged:\ngot:  %+v\nwant: %+v", got, want)
	}
	if fin := srvs[1].Metrics().SessionsFinished; fin != 1 {
		t.Fatalf("owner finished %d sessions, want 1", fin)
	}
	if fin := srvs[0].Metrics().SessionsFinished; fin != 0 {
		t.Fatalf("non-owner finished %d sessions, want 0 (redirect should not serve)", fin)
	}
}

// connCutter wraps the dialer, tracking live connections per node so the
// test can simulate a box death: cut every connection to one address and
// close its listener, from the client's point of view exactly a dead node.
type connCutter struct {
	mu    sync.Mutex
	conns map[string][]net.Conn
	dead  map[string]bool
}

func newConnCutter() *connCutter {
	return &connCutter{conns: map[string][]net.Conn{}, dead: map[string]bool{}}
}

func (cc *connCutter) dial(addr string) (net.Conn, error) {
	cc.mu.Lock()
	if cc.dead[addr] {
		cc.mu.Unlock()
		return nil, fmt.Errorf("connCutter: %s is dead", addr)
	}
	cc.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	cc.conns[addr] = append(cc.conns[addr], conn)
	cc.mu.Unlock()
	return conn, nil
}

func (cc *connCutter) kill(addr string) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.dead[addr] = true
	for _, conn := range cc.conns[addr] {
		conn.Close()
	}
	cc.conns[addr] = nil
}

// TestClusterFailover kills the owning node mid-stream (ISSUE 8
// acceptance): the failover runner walks its preference list to the
// survivor, replays its journal into a fresh session (Failover bypasses
// the ownership check), and the final verdict — violation included — is
// identical to an uninterrupted run.
func TestClusterFailover(t *testing.T) {
	_, nodes, _ := startCluster(t, 2)
	key := keyOwnedBy(t, nodes, nodes[0]) // primary is node 0, survivor node 1

	trace := multisetTrace(40, true) // planted observer violation
	want := localSummary(t, trace)
	if want.TotalViolations == 0 {
		t.Fatal("reference trace lost its violation")
	}

	cc := newConnCutter()
	r, err := failover.New(failover.Options{
		Nodes: nodes,
		Key:   key,
		Client: remote.ClientOptions{
			Hello:        remote.Hello{Spec: "multiset", Mode: "io"},
			BatchEntries: 4,
			MaxAttempts:  2,
			BackoffBase:  time.Millisecond,
			Dial:         cc.dial,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Node() != nodes[0] {
		t.Fatalf("runner primary %s, want ring owner %s", r.Node(), nodes[0])
	}

	half := len(trace) / 2
	for _, e := range trace[:half] {
		if err := r.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry #%d: %v", e.Seq, err)
		}
	}
	// Let some of the first half actually reach the primary, then kill it.
	deadline := time.Now().Add(5 * time.Second)
	for r.Client().Session() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.Client().Session() == "" {
		t.Fatal("session never established on the primary")
	}
	cc.kill(nodes[0])

	for _, e := range trace[half:] {
		if err := r.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry #%d after kill: %v", e.Seq, err)
		}
	}
	v, err := r.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if r.Failovers() == 0 || r.Node() != nodes[1] {
		t.Fatalf("runner never failed over: failovers=%d node=%s", r.Failovers(), r.Node())
	}
	if v == nil || len(v.Reports) != 1 {
		t.Fatalf("verdict: %v", v)
	}
	if got := v.Reports[0].Report.Summary(); got != want {
		t.Fatalf("failover verdict diverged from uninterrupted reference:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// rawSession speaks the wire protocol by hand: preamble, Hello, Welcome.
type rawSession struct {
	conn net.Conn
	br   *bufio.Reader
}

func rawDial(addr string, h remote.Hello) (*rawSession, remote.Welcome, error) {
	h.FormatVersion = event.FormatVersion
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, remote.Welcome{}, err
	}
	rs := &rawSession{conn: conn, br: bufio.NewReader(conn)}
	if _, err := conn.Write([]byte("VYRDRPC\x01")); err != nil {
		conn.Close()
		return nil, remote.Welcome{}, err
	}
	hello, _ := json.Marshal(h)
	if err := rs.writeFrame(1, hello); err != nil { // frameHello
		conn.Close()
		return nil, remote.Welcome{}, err
	}
	typ, payload, err := rs.readFrame()
	if err != nil {
		conn.Close()
		return nil, remote.Welcome{}, err
	}
	if typ != 10 { // frameWelcome
		conn.Close()
		return nil, remote.Welcome{}, fmt.Errorf("frame %d (%s), want welcome", typ, payload)
	}
	var w remote.Welcome
	if err := json.Unmarshal(payload, &w); err != nil {
		conn.Close()
		return nil, remote.Welcome{}, err
	}
	return rs, w, nil
}

func (rs *rawSession) writeFrame(typ byte, payload []byte) error {
	frame := append([]byte{typ}, binary.AppendUvarint(nil, uint64(len(payload)))...)
	_, err := rs.conn.Write(append(frame, payload...))
	return err
}

func (rs *rawSession) writeEntries(entries []event.Entry) error {
	var payload []byte
	var err error
	for _, e := range entries {
		if payload, err = event.AppendEntryFrame(payload, e); err != nil {
			return err
		}
	}
	return rs.writeFrame(2, payload) // frameEntries
}

func (rs *rawSession) readFrame() (byte, []byte, error) {
	typ, err := rs.br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	size, err := binary.ReadUvarint(rs.br)
	if err != nil {
		return 0, nil, err
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(rs.br, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// readVerdict consumes acks until the verdict frame (or an error).
func (rs *rawSession) readVerdict(timeout time.Duration) (*remote.Verdict, error) {
	rs.conn.SetReadDeadline(time.Now().Add(timeout))
	for {
		typ, payload, err := rs.readFrame()
		if err != nil {
			return nil, err
		}
		switch typ {
		case 12: // frameAck
			continue
		case 13: // frameVerdict
			var v remote.Verdict
			if err := json.Unmarshal(payload, &v); err != nil {
				return nil, err
			}
			return &v, nil
		default:
			return nil, fmt.Errorf("unexpected frame %d", typ)
		}
	}
}

// TestSessionSupersedeRace races two connections attaching the same
// session token while the stream is mid-flight: latest attach wins, the
// loser detaches cleanly (its connection closes; the session does not
// tear down), duplicate retransmission is absorbed by sequence numbers,
// and the verdict is exactly the single-connection verdict.
func TestSessionSupersedeRace(t *testing.T) {
	srv, addr := startServer(t, remote.ServerOptions{AckEvery: 4})
	trace := multisetTrace(40, true)
	want := localSummary(t, trace)
	half := len(trace) / 2

	// Open the session and stream the first half on the original
	// connection.
	first, w, err := rawDial(addr, remote.Hello{Spec: "multiset", Mode: "io"})
	if err != nil {
		t.Fatal(err)
	}
	defer first.conn.Close()
	if w.Session == "" {
		t.Fatal("no session token")
	}
	if err := first.writeEntries(trace[:half]); err != nil {
		t.Fatal(err)
	}

	// Two successors race to attach the token. Each that survives the
	// race ships the whole second half (duplicates are dropped by seq)
	// and sends Fin; at most one stays attached to read the verdict.
	type outcome struct {
		v   *remote.Verdict
		err error
	}
	results := make(chan outcome, 2)
	var ready sync.WaitGroup
	ready.Add(2)
	start := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() {
			rs, _, err := rawDial(addr, remote.Hello{Spec: "multiset", Mode: "io", Session: w.Session})
			ready.Done()
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer rs.conn.Close()
			<-start
			if err := rs.writeEntries(trace[half:]); err != nil {
				results <- outcome{err: err}
				return
			}
			if err := rs.writeFrame(3, nil); err != nil { // frameFin
				results <- outcome{err: err}
				return
			}
			v, err := rs.readVerdict(10 * time.Second)
			results <- outcome{v: v, err: err}
		}()
	}
	ready.Wait()
	close(start)

	var verdicts []*remote.Verdict
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Logf("superseded connection (expected for the loser): %v", o.err)
			continue
		}
		verdicts = append(verdicts, o.v)
	}
	if len(verdicts) == 0 {
		t.Fatal("neither racer obtained a verdict")
	}
	for _, v := range verdicts {
		if len(v.Reports) != 1 {
			t.Fatalf("verdict reports: %+v", v)
		}
		if got := v.Reports[0].Report.Summary(); got != want {
			t.Fatalf("supersede race changed the verdict:\ngot:  %+v\nwant: %+v", got, want)
		}
	}

	// The server finished exactly one session: no duplicate, no teardown.
	m := srv.Metrics()
	if m.SessionsFinished != 1 || m.SessionsActive != 0 {
		t.Fatalf("finished=%d active=%d, want 1/0", m.SessionsFinished, m.SessionsActive)
	}
}

// waitSession blocks until the client's handshake completed and a session
// token was assigned.
func waitSession(t *testing.T, cl *remote.Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for cl.Session() == "" {
		if time.Now().After(deadline) {
			t.Fatal("session never established")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOpsPrometheusText pins the Prometheus exposition of /metrics: the
// format negotiation (?format=prom and a scraper-style Accept header),
// the scheduler pool gauges, and the per-tenant counter families with
// their tenant labels.
func TestOpsPrometheusText(t *testing.T) {
	srv, addr := startServer(t, remote.ServerOptions{
		Workers: 2,
		Quotas:  fleet.Quotas{MaxSessions: 8},
	})
	web := httptest.NewServer(remote.OpsHandler(srv))
	defer web.Close()

	trace := multisetTrace(40, false)
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: "multiset", Mode: "io", Tenant: "acme"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, cl, trace)

	scrape := func(url string, accept string) string {
		t.Helper()
		req, err := http.NewRequest("GET", url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, r.StatusCode)
		}
		if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("GET %s: content type %q, want text/plain", url, ct)
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := scrape(web.URL+"/metrics?format=prom", "")
	for _, want := range []string{
		"# TYPE vyrd_sessions_finished_total counter",
		"vyrd_sessions_finished_total 1",
		fmt.Sprintf("vyrd_entries_total %d", len(trace)),
		"# TYPE vyrd_sched_workers gauge",
		"vyrd_sched_workers 2",
		"vyrd_sched_tasks_finished_total 1",
		`vyrd_tenant_sessions_total{tenant="acme"} 1`,
		`vyrd_tenant_entries_total{tenant="acme"} ` + fmt.Sprint(len(trace)),
		`vyrd_tenant_rejected_total{tenant="acme"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q\n%s", want, body)
		}
	}

	// A Prometheus scraper negotiates by Accept header alone.
	if got := scrape(web.URL+"/metrics", "text/plain;version=0.0.4"); !strings.Contains(got, "vyrd_sessions_active") {
		t.Errorf("Accept-negotiated scrape not in prom format:\n%s", got)
	}

	// JSON stays the default for humans and the existing tooling.
	r, err := http.Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default /metrics content type = %q, want application/json", ct)
	}
}
