package remote

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// SpecFactory describes one named, checkable specification the server can
// run sessions against. Factories are functions, not instances: every
// session gets fresh specification and replica state.
type SpecFactory struct {
	// Name is the handshake key clients select the spec by.
	Name string
	// NewSpec builds the specification for a single-checker session.
	NewSpec func() core.Spec
	// NewReplayer builds the replica for view-mode sessions; nil restricts
	// the spec to I/O refinement.
	NewReplayer func() core.Replayer
	// NewModules, when non-nil, enables modular sessions (Hello.Modular):
	// a Multi fan-out over the returned module set, each module with its
	// own spec, replayer and options.
	NewModules func() []core.Module
	// NewLinearizer builds the streaming linearizability checker for
	// Hello.Mode "linearize" sessions; nil restricts the spec to
	// refinement modes.
	NewLinearizer func() core.EntryChecker
	// NewTemporal builds the streaming temporal-property checker for
	// Hello.Mode "ltl" sessions. The props argument carries the client's
	// property sources from the handshake (one "name: formula" line each);
	// empty means the spec's built-in property set. A parse error rejects
	// the handshake. Nil restricts the spec to the other modes.
	NewTemporal func(props []string, failFast bool) (core.EntryChecker, error)
}

// Registry maps spec names to factories. It is safe for concurrent use; a
// server reads it on every handshake.
type Registry struct {
	mu sync.RWMutex
	m  map[string]SpecFactory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]SpecFactory)} }

// Register adds a factory. Registering an unnamed or unusable factory (no
// spec and no modules), or reusing a name, is an error.
func (r *Registry) Register(f SpecFactory) error {
	if f.Name == "" {
		return fmt.Errorf("remote: SpecFactory needs a name")
	}
	if f.NewSpec == nil && f.NewModules == nil {
		return fmt.Errorf("remote: spec %q has neither a specification nor modules", f.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[f.Name]; dup {
		return fmt.Errorf("remote: spec %q already registered", f.Name)
	}
	r.m[f.Name] = f
	return nil
}

// Lookup resolves a name.
func (r *Registry) Lookup(name string) (SpecFactory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.m[name]
	return f, ok
}

// Names returns the registered spec names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
