package remote

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/wal"
)

// ServerOptions tunes a verification server.
type ServerOptions struct {
	// Registry resolves handshake spec names; required.
	Registry *Registry
	// Window bounds each session's server-side log: the ingest loop blocks
	// once it is Window entries ahead of the session's checker, so a slow
	// checker backpressures through TCP to the client instead of buffering
	// the whole execution. 0 means DefaultWindow.
	Window int
	// SegmentSize is the per-session log segment size (0 = wal default).
	SegmentSize int
	// Shards selects sharded per-core capture for each session's log
	// (> 1; 0 or 1 keeps the single-counter log). Every session gets its
	// own shard group, so sessions never contend on capture state — the
	// scale-out posture for a multi-tenant vyrdd fleet. Session logs run
	// in ticket mode (wal.Options.Tickets): the TCP ingest loop is one
	// goroutine per session, so the client's wire order IS the causal
	// order, and only a per-session strictly increasing counter as the
	// merge key reproduces it exactly — capture timestamps would let two
	// back-to-back appends routed to different shards land in one clock
	// tick and be merge-swapped by their unordered batch seqs, changing
	// verdicts. The per-entry ticket RMW is uncontended under the single
	// ingest goroutine, and cross-session capture stays contention-free.
	Shards int
	// AckEvery is the ack cadence in entries (0 = DefaultAckEvery). The
	// effective cadence per session never exceeds a quarter of the client's
	// advertised window, so a small-window client is never starved of acks.
	AckEvery int
	// DrainTimeout bounds Shutdown when its context has no earlier
	// deadline (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// Logf, when non-nil, receives one line per connection-level event.
	Logf func(format string, args ...any)
}

// Defaults for ServerOptions zero values.
const (
	DefaultWindow       = 1 << 16
	DefaultAckEvery     = 1024
	DefaultDrainTimeout = 10 * time.Second
)

// Server accepts log-shipping connections and runs one checker pipeline
// per session. Sessions survive connection drops (the client resumes with
// its session token) and are force-finished with a partial-prefix verdict
// if a drain deadline expires first.
type Server struct {
	opts ServerOptions

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	sessions  map[string]*session
	recent    []SessionMetrics // finished sessions, newest last, bounded
	nextID    int64
	draining  bool
	started   time.Time

	connWG sync.WaitGroup

	sessionsStarted  atomic.Int64
	sessionsFinished atomic.Int64
	entriesTotal     atomic.Int64
	violationsTotal  atomic.Int64
}

// recentCap bounds the finished-session metrics ring.
const recentCap = 32

// NewServer constructs a server over the given options.
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("remote: ServerOptions.Registry is required")
	}
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.AckEvery <= 0 {
		opts.AckEvery = DefaultAckEvery
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = DefaultDrainTimeout
	}
	return &Server{
		opts:      opts,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		sessions:  make(map[string]*session),
		started:   time.Now(),
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts connections on l until the listener closes (Shutdown
// closes every registered listener). It returns nil on a drain-initiated
// close and the accept error otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("remote: server is draining")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.isDraining() && errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// session is one client log's checker pipeline on the server. Its log is a
// windowed wal pipeline: ingest appends, the checker goroutine consumes
// through a cursor, and the window is the backpressure that bounds memory.
type session struct {
	id      string
	spec    string
	modular bool
	started time.Time

	log  wal.Backend
	wait func() []core.ModuleReport

	// recv is the highest contiguous client sequence number ingested; it
	// doubles as the resume point for reconnecting clients and the ack
	// value.
	recv     atomic.Int64
	ackEvery int64
	lastAck  int64

	// ioMu serializes ingest batches against finishing (fin or drain
	// force-finish), so the log is never closed mid-append.
	ioMu     sync.Mutex
	finished bool
	reports  []core.ModuleReport

	// connMu guards the attached connection; at most one live connection
	// serves a session at a time.
	connMu sync.Mutex
	conn   net.Conn
	fw     *frameWriter
}

// attach claims the session for a connection, superseding any previous
// one. A client reconnecting after a drop routinely beats the server's
// discovery of the dead connection (its read is still blocked), so latest
// wins: the old connection is closed, its handler's read fails, and its
// deferred detach is a no-op because the session already points elsewhere.
func (ss *session) attach(conn net.Conn, fw *frameWriter) {
	ss.connMu.Lock()
	old := ss.conn
	ss.conn, ss.fw = conn, fw
	ss.connMu.Unlock()
	if old != nil && old != conn {
		old.Close()
	}
}

func (ss *session) detach(conn net.Conn) {
	ss.connMu.Lock()
	defer ss.connMu.Unlock()
	if ss.conn == conn {
		ss.conn, ss.fw = nil, nil
	}
}

// attached returns the live connection and writer, if any.
func (ss *session) attached() (net.Conn, *frameWriter) {
	ss.connMu.Lock()
	defer ss.connMu.Unlock()
	return ss.conn, ss.fw
}

// newSession builds a session for a validated handshake: a windowed log,
// the checker (or modular fan-out) over the named spec, and the pipeline
// goroutine consuming the log's cursor.
func (s *Server) newSession(h Hello) (*session, error) {
	f, ok := s.opts.Registry.Lookup(h.Spec)
	if !ok {
		return nil, fmt.Errorf("unknown spec %q (registered: %v)", h.Spec, s.opts.Registry.Names())
	}
	lg := wal.Open(wal.LevelView, wal.Options{
		Window:      s.opts.Window,
		SegmentSize: s.opts.SegmentSize,
		Shards:      s.opts.Shards,
		// Single-goroutine ingest of the client's ordered stream: ticket
		// mode keeps the merged order identical to the wire order (see
		// the ServerOptions.Shards comment).
		Tickets: true,
	})
	cur := lg.Reader()
	done := make(chan []core.ModuleReport, 1)
	if h.Modular {
		if f.NewModules == nil {
			return nil, fmt.Errorf("spec %q has no modular decomposition", h.Spec)
		}
		m, err := core.NewMulti(f.NewModules()...)
		if err != nil {
			return nil, err
		}
		go func() { done <- m.Run(cur) }()
	} else if h.Mode == "linearize" {
		if f.NewLinearizer == nil {
			return nil, fmt.Errorf("spec %q does not support linearizability checking", h.Spec)
		}
		c := f.NewLinearizer()
		go func() {
			rep := core.RunChecker(c, cur)
			// A violated linearizability verdict is final; keep draining the
			// cursor so the window never wedges the ingest loop.
			for {
				if _, ok := cur.Next(); !ok {
					break
				}
			}
			done <- []core.ModuleReport{{Report: rep}}
		}()
	} else {
		if f.NewSpec == nil {
			return nil, fmt.Errorf("spec %q is modular-only", h.Spec)
		}
		var opts []core.Option
		switch h.Mode {
		case "", "view":
			if f.NewReplayer != nil {
				if r := f.NewReplayer(); r != nil {
					opts = append(opts, core.WithMode(core.ModeView), core.WithReplayer(r))
				} else if h.Mode == "view" {
					return nil, fmt.Errorf("spec %q does not support view refinement", h.Spec)
				}
			} else if h.Mode == "view" {
				return nil, fmt.Errorf("spec %q does not support view refinement", h.Spec)
			}
		case "io":
			opts = append(opts, core.WithMode(core.ModeIO))
		default:
			return nil, fmt.Errorf("unknown mode %q (io, view or linearize)", h.Mode)
		}
		opts = append(opts, core.WithFailFast(h.FailFast))
		c, err := core.New(f.NewSpec(), opts...)
		if err != nil {
			return nil, err
		}
		go func() {
			rep := c.Run(cur)
			// A fail-fast checker stops consuming at its first violation;
			// keep draining the cursor so the window never wedges the
			// ingest loop (remaining entries are discarded, the verdict is
			// already decided).
			for {
				if _, ok := cur.Next(); !ok {
					break
				}
			}
			done <- []core.ModuleReport{{Report: rep}}
		}()
	}

	ss := &session{
		spec:    h.Spec,
		modular: h.Modular,
		started: time.Now(),
		log:     lg,
		wait: func() []core.ModuleReport {
			reports := <-done
			done <- reports // re-arm for idempotent waits
			return reports
		},
		ackEvery: int64(s.opts.AckEvery),
	}
	if h.Window > 0 && int64(h.Window/4) < ss.ackEvery {
		ss.ackEvery = int64(h.Window / 4)
	}
	if ss.ackEvery < 1 {
		ss.ackEvery = 1
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lg.Close()
		return nil, fmt.Errorf("server is draining")
	}
	s.nextID++
	ss.id = fmt.Sprintf("s%d", s.nextID)
	s.sessions[ss.id] = ss
	s.mu.Unlock()
	s.sessionsStarted.Add(1)
	return ss, nil
}

// ingest appends one Entries frame's records to the session log. Entries
// at or below the resume point are duplicates from a retransmitting client
// and are discarded; a gap above it means the client and server disagree
// about the stream position, which is fatal for the connection (the
// session survives for a clean resume).
func (ss *session) ingest(payload []byte) (int64, error) {
	ss.ioMu.Lock()
	defer ss.ioMu.Unlock()
	if ss.finished {
		return 0, nil // drain already decided the verdict; discard
	}
	var n int64
	for len(payload) > 0 {
		e, rest, err := event.DecodeEntryFrame(payload)
		if err != nil {
			return n, fmt.Errorf("remote: decode entry frame: %w", err)
		}
		payload = rest
		recv := ss.recv.Load()
		if e.Seq <= recv {
			continue
		}
		if e.Seq != recv+1 {
			return n, fmt.Errorf("remote: sequence gap: got #%d, expected #%d", e.Seq, recv+1)
		}
		ss.log.Append(e)
		ss.recv.Store(e.Seq)
		n++
	}
	return n, nil
}

// finish closes the session's log, joins the checker pipeline and caches
// the reports. Idempotent; safe to race between the fin path and a drain
// force-finish.
func (ss *session) finish() []core.ModuleReport {
	ss.ioMu.Lock()
	defer ss.ioMu.Unlock()
	if !ss.finished {
		ss.finished = true
		ss.log.Close()
		ss.reports = ss.wait()
	}
	return ss.reports
}

// handle serves one connection: preamble, handshake, then the ingest loop.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	fw := newFrameWriter(conn)
	if err := readPreamble(br); err != nil {
		s.logf("remote: %s: %v", conn.RemoteAddr(), err)
		return
	}
	typ, payload, err := readFrame(br)
	if err != nil || typ != frameHello {
		s.logf("remote: %s: expected hello, got frame %d (%v)", conn.RemoteAddr(), typ, err)
		return
	}
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		fw.writeJSON(frameReject, Reject{Error: fmt.Sprintf("malformed hello: %v", err)})
		return
	}
	if h.FormatVersion != event.FormatVersion {
		msg := fmt.Sprintf("log format version mismatch: client ships format version %d, this server reads version %d",
			h.FormatVersion, event.FormatVersion)
		s.logf("remote: %s: %s", conn.RemoteAddr(), msg)
		fw.writeJSON(frameReject, Reject{Error: msg})
		return
	}

	var ss *session
	if h.Session != "" {
		s.mu.Lock()
		ss = s.sessions[h.Session]
		s.mu.Unlock()
		if ss == nil {
			fw.writeJSON(frameReject, Reject{Error: fmt.Sprintf("unknown session %q (finished, drained, or never started)", h.Session)})
			return
		}
	} else {
		var err error
		ss, err = s.newSession(h)
		if err != nil {
			fw.writeJSON(frameReject, Reject{Error: err.Error()})
			return
		}
	}
	ss.attach(conn, fw)
	defer ss.detach(conn)
	if err := fw.writeJSON(frameWelcome, Welcome{Session: ss.id, ResumeFrom: ss.recv.Load()}); err != nil {
		return
	}
	s.logf("remote: %s: session %s spec=%q resume_from=%d", conn.RemoteAddr(), ss.id, ss.spec, ss.recv.Load())

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			// Connection drop mid-session: keep the session for resume.
			s.logf("remote: %s: session %s connection lost: %v", conn.RemoteAddr(), ss.id, err)
			return
		}
		switch typ {
		case frameEntries:
			n, err := s.ingestAndAck(ss, payload)
			if err != nil {
				s.logf("remote: %s: session %s: %v", conn.RemoteAddr(), ss.id, err)
				return
			}
			_ = n
		case frameFin:
			s.finishSession(ss, fw, false)
			return
		default:
			s.logf("remote: %s: session %s: unexpected frame %d", conn.RemoteAddr(), ss.id, typ)
			return
		}
	}
}

// ingestAndAck appends a batch and acks at the session's cadence.
func (s *Server) ingestAndAck(ss *session, payload []byte) (int64, error) {
	n, err := ss.ingest(payload)
	s.entriesTotal.Add(n)
	if err != nil {
		return n, err
	}
	if recv := ss.recv.Load(); recv-ss.lastAck >= ss.ackEvery {
		_, fw := ss.attached()
		if fw != nil {
			if err := fw.writeAck(recv); err != nil {
				return n, err
			}
		}
		ss.lastAck = recv
	}
	return n, nil
}

// finishSession completes a session (fin path or drain force-finish),
// sends the verdict on the session's live connection if there is one, and
// retires the session into the finished-metrics ring.
func (s *Server) finishSession(ss *session, fw *frameWriter, drained bool) {
	reports := ss.finish()
	verdict := Verdict{Reports: reports, Drained: drained}
	var violations int64
	for _, mr := range reports {
		violations += mr.Report.TotalViolations
	}

	s.mu.Lock()
	_, live := s.sessions[ss.id]
	if live {
		delete(s.sessions, ss.id)
		m := s.sessionMetricsLocked(ss)
		m.Reports = verdictSummaries(reports)
		m.Connected = false
		s.recent = append(s.recent, m)
		if len(s.recent) > recentCap {
			s.recent = s.recent[len(s.recent)-recentCap:]
		}
	}
	s.mu.Unlock()
	if live {
		s.sessionsFinished.Add(1)
		s.violationsTotal.Add(violations)
	}

	if fw == nil {
		_, fw = ss.attached()
	}
	if fw != nil {
		if err := fw.writeAck(ss.recv.Load()); err == nil {
			fw.writeJSON(frameVerdict, &verdict)
		}
	}
	s.logf("remote: session %s finished: ok=%v violations=%d entries=%d drained=%v",
		ss.id, verdict.Ok(), violations, ss.recv.Load(), drained)
}

// Shutdown drains the server: listeners close (no new sessions), in-flight
// sessions get until the context deadline (or DrainTimeout) to deliver
// their fin and receive a normal verdict, and whatever is still live at
// the deadline is force-finished — its checker runs to the end of the
// ingested prefix and the verdict (marked Drained) is pushed to the
// client's live connection. Shutdown returns once every connection handler
// has exited.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}

	deadline := time.Now().Add(s.opts.DrainTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			deadline = time.Now()
		case <-time.After(2 * time.Millisecond):
		}
	}

	// Force-finish the stragglers: verdicts over the ingested prefix.
	s.mu.Lock()
	remaining := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		remaining = append(remaining, ss)
	}
	s.mu.Unlock()
	for _, ss := range remaining {
		s.finishSession(ss, nil, true)
		if conn, _ := ss.attached(); conn != nil {
			conn.Close()
		}
	}

	// Unstick any connection that never completed a handshake.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()

	s.connWG.Wait()
	return ctx.Err()
}

// Health is the /healthz body.
type Health struct {
	Ok             bool    `json:"ok"`
	Draining       bool    `json:"draining,omitempty"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	ActiveSessions int     `json:"active_sessions"`
	Specs          int     `json:"specs"`
}

// Health reports liveness for the ops surface.
func (s *Server) Health() Health {
	s.mu.Lock()
	active := len(s.sessions)
	draining := s.draining
	s.mu.Unlock()
	return Health{
		Ok:             !draining,
		Draining:       draining,
		UptimeSeconds:  time.Since(s.started).Seconds(),
		ActiveSessions: active,
		Specs:          len(s.opts.Registry.Names()),
	}
}

// SessionMetrics is the per-session slice of /metrics.
type SessionMetrics struct {
	ID            string          `json:"id"`
	Spec          string          `json:"spec"`
	Modular       bool            `json:"modular,omitempty"`
	Connected     bool            `json:"connected"`
	Entries       int64           `json:"entries"`
	EntriesPerSec float64         `json:"entries_per_sec"`
	VerifierLag   int64           `json:"verifier_lag"`
	Log           wal.Stats       `json:"log"`
	Reports       []SessionReport `json:"reports,omitempty"`
}

// SessionReport pairs a module name with its report summary — the shared
// core.Summary serialization (vyrdbench -json emits the same shape).
type SessionReport struct {
	Module string       `json:"module,omitempty"`
	Report core.Summary `json:"report"`
}

// Metrics is the /metrics body.
type Metrics struct {
	UptimeSeconds    float64          `json:"uptime_seconds"`
	SessionsActive   int              `json:"sessions_active"`
	SessionsStarted  int64            `json:"sessions_started"`
	SessionsFinished int64            `json:"sessions_finished"`
	EntriesTotal     int64            `json:"entries_total"`
	ViolationsTotal  int64            `json:"violations_total"`
	Sessions         []SessionMetrics `json:"sessions"`
	Finished         []SessionMetrics `json:"finished,omitempty"`
}

// sessionMetricsLocked snapshots one session; the caller holds s.mu.
func (s *Server) sessionMetricsLocked(ss *session) SessionMetrics {
	stats := ss.log.Stats()
	elapsed := time.Since(ss.started).Seconds()
	eps := 0.0
	if elapsed > 0 {
		eps = float64(ss.recv.Load()) / elapsed
	}
	conn, _ := ss.attached()
	return SessionMetrics{
		ID:            ss.id,
		Spec:          ss.spec,
		Modular:       ss.modular,
		Connected:     conn != nil,
		Entries:       ss.recv.Load(),
		EntriesPerSec: eps,
		VerifierLag:   stats.MaxVerifierLag,
		Log:           stats,
	}
}

func verdictSummaries(reports []core.ModuleReport) []SessionReport {
	out := make([]SessionReport, len(reports))
	for i, mr := range reports {
		out[i] = SessionReport{Module: mr.Module, Report: mr.Report.Summary()}
	}
	return out
}

// Metrics snapshots the server's counters and per-session pipelines for
// the ops surface.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		UptimeSeconds:    time.Since(s.started).Seconds(),
		SessionsActive:   len(s.sessions),
		SessionsStarted:  s.sessionsStarted.Load(),
		SessionsFinished: s.sessionsFinished.Load(),
		EntriesTotal:     s.entriesTotal.Load(),
		ViolationsTotal:  s.violationsTotal.Load(),
	}
	for _, ss := range s.sessions {
		m.Sessions = append(m.Sessions, s.sessionMetricsLocked(ss))
	}
	m.Finished = append(m.Finished, s.recent...)
	s.mu.Unlock()
	sortSessionMetrics(m.Sessions)
	return m
}

// sortSessionMetrics orders sessions by id for stable output.
func sortSessionMetrics(ms []SessionMetrics) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j-1].ID > ms[j].ID; j-- {
			ms[j-1], ms[j] = ms[j], ms[j-1]
		}
	}
}
