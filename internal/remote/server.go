package remote

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/fleet"
	"repro/internal/wal"
)

// ServerOptions tunes a verification server.
type ServerOptions struct {
	// Registry resolves handshake spec names; required.
	Registry *Registry
	// Window bounds each session's server-side log: the ingest loop blocks
	// once it is Window entries ahead of the session's checker, so a slow
	// checker backpressures through TCP to the client instead of buffering
	// the whole execution. 0 means DefaultWindow.
	Window int
	// SegmentSize is the per-session log segment size (0 = wal default).
	SegmentSize int
	// Shards selects sharded per-core capture for each session's log
	// (> 1; 0 or 1 keeps the single-counter log). Every session gets its
	// own shard group, so sessions never contend on capture state — the
	// scale-out posture for a multi-tenant vyrdd fleet. Session logs run
	// in ticket mode (wal.Options.Tickets): the TCP ingest loop is one
	// goroutine per session, so the client's wire order IS the causal
	// order, and only a per-session strictly increasing counter as the
	// merge key reproduces it exactly — capture timestamps would let two
	// back-to-back appends routed to different shards land in one clock
	// tick and be merge-swapped by their unordered batch seqs, changing
	// verdicts. The per-entry ticket RMW is uncontended under the single
	// ingest goroutine, and cross-session capture stays contention-free.
	Shards int
	// AckEvery is the ack cadence in entries (0 = DefaultAckEvery). The
	// effective cadence per session never exceeds a quarter of the client's
	// advertised window, so a small-window client is never starved of acks.
	AckEvery int
	// DrainTimeout bounds Shutdown when its context has no earlier
	// deadline (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// Workers > 0 switches session checking from goroutine-per-session
	// to a fleet.Scheduler pool of that size: sessions become tasks,
	// ingest wakes them, and a bounded worker set time-slices the
	// runnable ones — the multi-tenant posture where thousands of
	// mostly-idle sessions cost zero goroutines. 0 keeps the classic
	// goroutine-per-session pipeline.
	Workers int
	// SliceBudget is the scheduler's per-slice entry budget
	// (0 = fleet.DefaultSliceBudget); ignored without Workers.
	SliceBudget int
	// Quotas is the per-tenant admission/fairness policy (zero values
	// mean unlimited). Sessions are accounted under Hello.Tenant.
	Quotas fleet.Quotas
	// Cluster is the static membership list of a routed vyrdd fleet;
	// Self is this node's own address in it. When set, a Hello whose Key
	// hashes to another node is rejected with a redirect (unless it is a
	// failover or a resume), so every member plus every ring-aware
	// client agrees on placement without coordination.
	Cluster []string
	Self    string
	// Logf, when non-nil, receives one line per connection-level event.
	Logf func(format string, args ...any)
}

// Defaults for ServerOptions zero values.
const (
	DefaultWindow       = 1 << 16
	DefaultAckEvery     = 1024
	DefaultDrainTimeout = 10 * time.Second
)

// Server accepts log-shipping connections and runs one checker pipeline
// per session. Sessions survive connection drops (the client resumes with
// its session token) and are force-finished with a partial-prefix verdict
// if a drain deadline expires first.
type Server struct {
	opts ServerOptions

	// sched is the bounded checker pool (nil in goroutine-per-session
	// mode); tenants tracks per-tenant quotas; ring is the cluster
	// placement function (nil when unclustered).
	sched   *fleet.Scheduler
	tenants *fleet.TenantTable
	ring    *fleet.Ring

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	sessions  map[string]*session
	recent    []SessionMetrics // finished sessions, newest last, bounded
	nextID    int64
	draining  bool
	started   time.Time

	connWG sync.WaitGroup

	sessionsStarted  atomic.Int64
	sessionsFinished atomic.Int64
	entriesTotal     atomic.Int64
	violationsTotal  atomic.Int64
}

// recentCap bounds the finished-session metrics ring.
const recentCap = 32

// NewServer constructs a server over the given options.
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("remote: ServerOptions.Registry is required")
	}
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.AckEvery <= 0 {
		opts.AckEvery = DefaultAckEvery
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = DefaultDrainTimeout
	}
	s := &Server{
		opts:      opts,
		tenants:   fleet.NewTenantTable(opts.Quotas),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		sessions:  make(map[string]*session),
		started:   time.Now(),
	}
	if len(opts.Cluster) > 0 {
		if opts.Self == "" {
			return nil, fmt.Errorf("remote: ServerOptions.Self is required with Cluster")
		}
		ring, err := fleet.NewRing(opts.Cluster, 0)
		if err != nil {
			return nil, err
		}
		if !ring.Contains(opts.Self) {
			return nil, fmt.Errorf("remote: Self %q is not in Cluster %v", opts.Self, opts.Cluster)
		}
		s.ring = ring
	}
	if opts.Workers > 0 {
		s.sched = fleet.NewScheduler(opts.Workers, opts.SliceBudget)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts connections on l until the listener closes (Shutdown
// closes every registered listener). It returns nil on a drain-initiated
// close and the accept error otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("remote: server is draining")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.isDraining() && errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// session is one client log's checker pipeline on the server. Its log is a
// windowed wal pipeline: ingest appends, the checker goroutine consumes
// through a cursor, and the window is the backpressure that bounds memory.
type session struct {
	id      string
	spec    string
	modular bool
	started time.Time

	// tenant is the admission record the session is charged against
	// (released exactly once when the session retires).
	tenant     *fleet.Tenant
	tenantName string

	log wal.Backend
	// cur is the checker pipeline's reader; its Pos is the consumption
	// mark that window-memory accounting subtracts from recv.
	cur  wal.Reader
	wait func() []core.ModuleReport
	// task is the session's scheduler handle (nil in goroutine mode);
	// ingest wakes it after every append.
	task *fleet.Task

	// recv is the highest contiguous client sequence number ingested; it
	// doubles as the resume point for reconnecting clients and the ack
	// value. bytesIn is the encoded size of everything appended, the
	// numerator of the retained-window byte estimate.
	recv     atomic.Int64
	bytesIn  atomic.Int64
	ackEvery int64
	// lastAck is atomic: a superseding connection can race the old one's
	// in-flight batch, so two ingestAndAck calls may overlap briefly. A
	// duplicate cumulative ack is harmless; a torn counter is not.
	lastAck atomic.Int64

	// ioMu serializes ingest batches against finishing (fin or drain
	// force-finish), so the log is never closed mid-append.
	ioMu     sync.Mutex
	finished bool
	reports  []core.ModuleReport

	// connMu guards the attached connection; at most one live connection
	// serves a session at a time.
	connMu sync.Mutex
	conn   net.Conn
	fw     *frameWriter
}

// attach claims the session for a connection, superseding any previous
// one. A client reconnecting after a drop routinely beats the server's
// discovery of the dead connection (its read is still blocked), so latest
// wins: the old connection is closed, its handler's read fails, and its
// deferred detach is a no-op because the session already points elsewhere.
func (ss *session) attach(conn net.Conn, fw *frameWriter) {
	ss.connMu.Lock()
	old := ss.conn
	ss.conn, ss.fw = conn, fw
	ss.connMu.Unlock()
	if old != nil && old != conn {
		old.Close()
	}
}

func (ss *session) detach(conn net.Conn) {
	ss.connMu.Lock()
	defer ss.connMu.Unlock()
	if ss.conn == conn {
		ss.conn, ss.fw = nil, nil
	}
}

// attached returns the live connection and writer, if any.
func (ss *session) attached() (net.Conn, *frameWriter) {
	ss.connMu.Lock()
	defer ss.connMu.Unlock()
	return ss.conn, ss.fw
}

// windowBytes estimates the session's retained window memory: entries
// ingested but not yet consumed by the checker, times the session's
// observed mean encoded entry size. Cheap (three atomic loads), safe
// from any goroutine, and what tenant window-memory quotas sum over.
func (ss *session) windowBytes() int64 {
	recv := ss.recv.Load()
	if recv <= 0 {
		return 0
	}
	retained := recv - int64(ss.cur.Pos())
	if retained <= 0 {
		return 0
	}
	return retained * (ss.bytesIn.Load() / recv)
}

// sessionEngine adapts the three session checker shapes (single
// checker, linearizer, modular fan-out) onto fleet.Engine for the
// scheduler. Exactly one of multi/checker is set.
type sessionEngine struct {
	multi   *core.Multi
	checker core.EntryChecker
	cur     wal.Reader
}

func (p *sessionEngine) Feed(e event.Entry) {
	if p.multi != nil {
		p.multi.FeedSync(e)
		return
	}
	p.checker.Feed(e)
}

func (p *sessionEngine) Finish() []core.ModuleReport {
	var logErr string
	if err := p.cur.Err(); err != nil {
		logErr = err.Error()
	}
	if p.multi != nil {
		return p.multi.FinishSync(logErr)
	}
	rep := p.checker.Finish()
	if logErr != "" && rep.LogErr == "" {
		rep.LogErr = logErr
	}
	return []core.ModuleReport{{Report: rep}}
}

// newSession builds a session for a validated handshake: a windowed log,
// the checker (or modular fan-out) over the named spec, and the pipeline
// goroutine consuming the log's cursor.
func (s *Server) newSession(h Hello) (*session, error) {
	f, ok := s.opts.Registry.Lookup(h.Spec)
	if !ok {
		return nil, fmt.Errorf("unknown spec %q (registered: %v)", h.Spec, s.opts.Registry.Names())
	}

	// Admission: charge the tenant's session quota before building any
	// pipeline state; release on every failure path below.
	ten, err := s.tenants.Admit(h.Tenant)
	if err != nil {
		return nil, err
	}
	admitted := false
	defer func() {
		if !admitted {
			ten.Release()
		}
	}()

	// Resolve the checker shape first, so handshake errors (unknown
	// mode, modular-only spec) surface before a log exists.
	var (
		multi   *core.Multi
		checker core.EntryChecker
	)
	if h.Modular {
		if f.NewModules == nil {
			return nil, fmt.Errorf("spec %q has no modular decomposition", h.Spec)
		}
		multi, err = core.NewMulti(f.NewModules()...)
		if err != nil {
			return nil, err
		}
	} else if h.Mode == "linearize" {
		if f.NewLinearizer == nil {
			return nil, fmt.Errorf("spec %q does not support linearizability checking", h.Spec)
		}
		checker = f.NewLinearizer()
	} else if h.Mode == "ltl" {
		if f.NewTemporal == nil {
			return nil, fmt.Errorf("spec %q does not support temporal checking", h.Spec)
		}
		checker, err = f.NewTemporal(h.Props, h.FailFast)
		if err != nil {
			return nil, err
		}
	} else {
		if f.NewSpec == nil {
			return nil, fmt.Errorf("spec %q is modular-only", h.Spec)
		}
		var opts []core.Option
		switch h.Mode {
		case "", "view":
			if f.NewReplayer != nil {
				if r := f.NewReplayer(); r != nil {
					opts = append(opts, core.WithMode(core.ModeView), core.WithReplayer(r))
				} else if h.Mode == "view" {
					return nil, fmt.Errorf("spec %q does not support view refinement", h.Spec)
				}
			} else if h.Mode == "view" {
				return nil, fmt.Errorf("spec %q does not support view refinement", h.Spec)
			}
		case "io":
			opts = append(opts, core.WithMode(core.ModeIO))
		default:
			return nil, fmt.Errorf("unknown mode %q (io, view, linearize or ltl)", h.Mode)
		}
		opts = append(opts, core.WithFailFast(h.FailFast))
		checker, err = core.New(f.NewSpec(), opts...)
		if err != nil {
			return nil, err
		}
	}

	lg := wal.Open(wal.LevelView, wal.Options{
		Window:      s.opts.Window,
		SegmentSize: s.opts.SegmentSize,
		Shards:      s.opts.Shards,
		// Single-goroutine ingest of the client's ordered stream: ticket
		// mode keeps the merged order identical to the wire order (see
		// the ServerOptions.Shards comment).
		Tickets: true,
	})
	cur := lg.Reader()

	ss := &session{
		spec:       h.Spec,
		modular:    h.Modular,
		started:    time.Now(),
		tenant:     ten,
		tenantName: ten.Name(),
		log:        lg,
		cur:        cur,
		ackEvery:   int64(s.opts.AckEvery),
	}

	if s.sched != nil {
		// Scheduler mode: the session is a task; its checker runs in
		// cooperative slices on the shared worker pool. The reader is
		// only ever touched by the worker holding the task.
		engine := &sessionEngine{multi: multi, checker: checker, cur: cur}
		ss.task = s.sched.Register(ss.tenantName, cur, engine, ss.recv.Load, nil)
		ss.wait = ss.task.Wait
	} else {
		// Goroutine mode: the classic one-pipeline-per-session shape.
		done := make(chan []core.ModuleReport, 1)
		if multi != nil {
			m := multi
			go func() { done <- m.Run(cur) }()
		} else {
			c := checker
			go func() {
				rep := core.RunChecker(c, cur)
				// A fail-fast or violated checker stops consuming early;
				// keep draining the cursor so the window never wedges
				// the ingest loop (remaining entries are discarded, the
				// verdict is already decided).
				for {
					if _, ok := cur.Next(); !ok {
						break
					}
				}
				done <- []core.ModuleReport{{Report: rep}}
			}()
		}
		ss.wait = func() []core.ModuleReport {
			reports := <-done
			done <- reports // re-arm for idempotent waits
			return reports
		}
	}

	if h.Window > 0 && int64(h.Window/4) < ss.ackEvery {
		ss.ackEvery = int64(h.Window / 4)
	}
	if ss.ackEvery < 1 {
		ss.ackEvery = 1
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lg.Close()
		if ss.task != nil {
			ss.task.Close(0)
			ss.task.Wait()
		}
		return nil, fmt.Errorf("server is draining")
	}
	s.nextID++
	ss.id = fmt.Sprintf("s%d", s.nextID)
	s.sessions[ss.id] = ss
	s.mu.Unlock()
	admitted = true
	s.sessionsStarted.Add(1)
	return ss, nil
}

// ingest appends one Entries frame's records to the session log. Entries
// at or below the resume point are duplicates from a retransmitting client
// and are discarded; a gap above it means the client and server disagree
// about the stream position, which is fatal for the connection (the
// session survives for a clean resume).
func (ss *session) ingest(payload []byte) (int64, error) {
	ss.ioMu.Lock()
	defer ss.ioMu.Unlock()
	if ss.finished {
		return 0, nil // drain already decided the verdict; discard
	}
	var n int64
	for len(payload) > 0 {
		frameLen := len(payload)
		e, rest, err := event.DecodeEntryFrame(payload)
		if err != nil {
			return n, fmt.Errorf("remote: decode entry frame: %w", err)
		}
		payload = rest
		frameLen -= len(rest)
		recv := ss.recv.Load()
		if e.Seq <= recv {
			continue
		}
		if e.Seq != recv+1 {
			return n, fmt.Errorf("remote: sequence gap: got #%d, expected #%d", e.Seq, recv+1)
		}
		ss.log.Append(e)
		ss.recv.Store(e.Seq)
		ss.bytesIn.Add(int64(frameLen))
		if ss.task != nil {
			// Wake after every append, not per batch: if the next Append
			// parks on a full window, the entries already published must
			// each have had their wake, or an idle task would never
			// drain them and the ingest loop would wedge.
			ss.task.Wake()
		}
		n++
	}
	return n, nil
}

// finish closes the session's log, joins the checker pipeline and caches
// the reports. Idempotent; safe to race between the fin path and a drain
// force-finish.
func (ss *session) finish() []core.ModuleReport {
	ss.ioMu.Lock()
	defer ss.ioMu.Unlock()
	if !ss.finished {
		ss.finished = true
		ss.log.Close()
		if ss.task != nil {
			// Tell the scheduler where the stream ends; a worker drains
			// the tail and finishes the engine.
			ss.task.Close(ss.recv.Load())
		}
		ss.reports = ss.wait()
	}
	return ss.reports
}

// handle serves one connection: preamble, handshake, then the ingest loop.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	fw := newFrameWriter(conn)
	if err := readPreamble(br); err != nil {
		s.logf("remote: %s: %v", conn.RemoteAddr(), err)
		return
	}
	typ, payload, err := readFrame(br)
	if err != nil || typ != frameHello {
		s.logf("remote: %s: expected hello, got frame %d (%v)", conn.RemoteAddr(), typ, err)
		return
	}
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		fw.writeJSON(frameReject, Reject{Error: fmt.Sprintf("malformed hello: %v", err)})
		return
	}
	if h.FormatVersion != event.FormatVersion {
		msg := fmt.Sprintf("log format version mismatch: client ships format version %d, this server reads version %d",
			h.FormatVersion, event.FormatVersion)
		s.logf("remote: %s: %s", conn.RemoteAddr(), msg)
		fw.writeJSON(frameReject, Reject{Error: msg})
		return
	}
	if rej := s.routeReject(h); rej != nil {
		s.logf("remote: %s: key %q redirected to %s", conn.RemoteAddr(), h.Key, rej.RedirectTo)
		fw.writeJSON(frameReject, rej)
		return
	}

	var ss *session
	if h.Session != "" {
		s.mu.Lock()
		ss = s.sessions[h.Session]
		s.mu.Unlock()
		if ss == nil {
			fw.writeJSON(frameReject, Reject{Error: fmt.Sprintf("unknown session %q (finished, drained, or never started)", h.Session)})
			return
		}
	} else {
		var err error
		ss, err = s.newSession(h)
		if err != nil {
			rej := Reject{Error: err.Error()}
			var qe *fleet.QuotaError
			if errors.As(err, &qe) {
				rej.Reason = RejectQuota
			}
			fw.writeJSON(frameReject, rej)
			return
		}
	}
	ss.attach(conn, fw)
	defer ss.detach(conn)
	if err := fw.writeJSON(frameWelcome, Welcome{Session: ss.id, ResumeFrom: ss.recv.Load()}); err != nil {
		return
	}
	s.logf("remote: %s: session %s spec=%q resume_from=%d", conn.RemoteAddr(), ss.id, ss.spec, ss.recv.Load())

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			// Connection drop mid-session: keep the session for resume.
			s.logf("remote: %s: session %s connection lost: %v", conn.RemoteAddr(), ss.id, err)
			return
		}
		switch typ {
		case frameEntries:
			n, err := s.ingestAndAck(ss, payload)
			if err != nil {
				s.logf("remote: %s: session %s: %v", conn.RemoteAddr(), ss.id, err)
				return
			}
			_ = n
		case frameFin:
			s.finishSession(ss, fw, false)
			return
		default:
			s.logf("remote: %s: session %s: unexpected frame %d", conn.RemoteAddr(), ss.id, typ)
			return
		}
	}
}

// ingestAndAck appends a batch and acks at the session's cadence,
// enforcing the tenant's rate and window-memory quotas as ingest pauses
// — delayed acks fill the client's resend window and stall its producer
// through the wal sink, the same backpressure chain a slow checker
// exerts, so a throttled tenant slows down instead of disconnecting.
func (s *Server) ingestAndAck(ss *session, payload []byte) (int64, error) {
	s.windowWait(ss)
	n, err := ss.ingest(payload)
	s.entriesTotal.Add(n)
	if err != nil {
		return n, err
	}
	if pause := ss.tenant.RatePause(int(n)); pause > 0 {
		// Cap one batch's pause so the connection stays responsive; the
		// unpaid debt carries over in the token bucket.
		if pause > time.Second {
			pause = time.Second
		}
		time.Sleep(pause)
	}
	if recv := ss.recv.Load(); recv-ss.lastAck.Load() >= ss.ackEvery {
		_, fw := ss.attached()
		if fw != nil {
			if err := fw.writeAck(recv); err != nil {
				return n, err
			}
		}
		ss.lastAck.Store(recv)
	}
	return n, nil
}

// windowWait pauses ingest while the session's tenant is over its
// aggregate window-memory budget, until the checker pool has consumed
// enough of the tenant's retained entries (or the server drains).
func (s *Server) windowWait(ss *session) {
	max := s.opts.Quotas.MaxWindowBytes
	if max <= 0 {
		return
	}
	for i := 0; ; i++ {
		if s.tenantWindowBytes(ss.tenantName) <= max {
			return
		}
		if i == 0 {
			ss.tenant.NoteThrottle()
		}
		if s.isDraining() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// tenantWindowBytes sums the retained window memory of every live
// session charged to the tenant.
func (s *Server) tenantWindowBytes(tenant string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum int64
	for _, ss := range s.sessions {
		if ss.tenantName == tenant {
			sum += ss.windowBytes()
		}
	}
	return sum
}

// finishSession completes a session (fin path or drain force-finish),
// sends the verdict on the session's live connection if there is one, and
// retires the session into the finished-metrics ring.
func (s *Server) finishSession(ss *session, fw *frameWriter, drained bool) {
	reports := ss.finish()
	verdict := Verdict{Reports: reports, Drained: drained}
	var violations int64
	for _, mr := range reports {
		violations += mr.Report.TotalViolations
	}

	s.mu.Lock()
	_, live := s.sessions[ss.id]
	if live {
		delete(s.sessions, ss.id)
		m := s.sessionMetricsLocked(ss)
		m.Reports = verdictSummaries(reports)
		m.Connected = false
		s.recent = append(s.recent, m)
		if len(s.recent) > recentCap {
			s.recent = s.recent[len(s.recent)-recentCap:]
		}
	}
	s.mu.Unlock()
	if live {
		s.sessionsFinished.Add(1)
		s.violationsTotal.Add(violations)
		ss.tenant.Release()
	}

	if fw == nil {
		_, fw = ss.attached()
	}
	if fw != nil {
		if err := fw.writeAck(ss.recv.Load()); err == nil {
			fw.writeJSON(frameVerdict, &verdict)
		}
	}
	s.logf("remote: session %s finished: ok=%v violations=%d entries=%d drained=%v",
		ss.id, verdict.Ok(), violations, ss.recv.Load(), drained)
}

// routeReject decides whether a Hello belongs on another cluster node:
// a keyed, non-failover, non-resume handshake whose ring owner is not
// this node gets a redirect. Failovers are honored anywhere (the client
// walked its preference list past a dead primary), resumes are local by
// construction (the session lives here), and keyless sessions are
// served wherever they land.
func (s *Server) routeReject(h Hello) *Reject {
	if s.ring == nil || h.Key == "" || h.Failover || h.Session != "" {
		return nil
	}
	owner := s.ring.Owner(h.Key)
	if owner == s.opts.Self {
		return nil
	}
	return &Reject{
		Reason:     RejectRedirect,
		RedirectTo: owner,
		Error:      fmt.Sprintf("session key %q is owned by cluster node %s", h.Key, owner),
	}
}

// Shutdown drains the server: listeners close (no new sessions), in-flight
// sessions get until the context deadline (or DrainTimeout) to deliver
// their fin and receive a normal verdict, and whatever is still live at
// the deadline is force-finished — its checker runs to the end of the
// ingested prefix and the verdict (marked Drained) is pushed to the
// client's live connection. Shutdown returns once every connection handler
// has exited.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}

	deadline := time.Now().Add(s.opts.DrainTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			deadline = time.Now()
		case <-time.After(2 * time.Millisecond):
		}
	}

	// Force-finish the stragglers: verdicts over the ingested prefix.
	s.mu.Lock()
	remaining := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		remaining = append(remaining, ss)
	}
	s.mu.Unlock()
	for _, ss := range remaining {
		s.finishSession(ss, nil, true)
		if conn, _ := ss.attached(); conn != nil {
			conn.Close()
		}
	}

	// Unstick any connection that never completed a handshake.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()

	s.connWG.Wait()
	if s.sched != nil {
		// Every session is finished by now, so the pool's queue is dry.
		s.sched.Stop()
	}
	return ctx.Err()
}

// Health is the /healthz body.
type Health struct {
	Ok             bool    `json:"ok"`
	Draining       bool    `json:"draining,omitempty"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	ActiveSessions int     `json:"active_sessions"`
	Specs          int     `json:"specs"`
}

// Health reports liveness for the ops surface.
func (s *Server) Health() Health {
	s.mu.Lock()
	active := len(s.sessions)
	draining := s.draining
	s.mu.Unlock()
	return Health{
		Ok:             !draining,
		Draining:       draining,
		UptimeSeconds:  time.Since(s.started).Seconds(),
		ActiveSessions: active,
		Specs:          len(s.opts.Registry.Names()),
	}
}

// SessionMetrics is the per-session slice of /metrics.
type SessionMetrics struct {
	ID            string  `json:"id"`
	Spec          string  `json:"spec"`
	Tenant        string  `json:"tenant,omitempty"`
	Modular       bool    `json:"modular,omitempty"`
	Connected     bool    `json:"connected"`
	Entries       int64   `json:"entries"`
	EntriesPerSec float64 `json:"entries_per_sec"`
	VerifierLag   int64   `json:"verifier_lag"`
	// WindowBytes estimates the session's retained window memory:
	// ingested-but-unchecked entries times the mean encoded entry size.
	WindowBytes int64           `json:"window_bytes"`
	Log         wal.Stats       `json:"log"`
	Reports     []SessionReport `json:"reports,omitempty"`
}

// SessionReport pairs a module name with its report summary — the shared
// core.Summary serialization (vyrdbench -json emits the same shape).
type SessionReport struct {
	Module string       `json:"module,omitempty"`
	Report core.Summary `json:"report"`
}

// Metrics is the /metrics body.
type Metrics struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	SessionsActive   int     `json:"sessions_active"`
	SessionsStarted  int64   `json:"sessions_started"`
	SessionsFinished int64   `json:"sessions_finished"`
	EntriesTotal     int64   `json:"entries_total"`
	ViolationsTotal  int64   `json:"violations_total"`
	// Sched is the checker pool snapshot (nil in goroutine mode).
	Sched *fleet.SchedStats `json:"sched,omitempty"`
	// Tenants lists per-tenant admission/throttle counters with their
	// live retained-window bytes overlaid.
	Tenants  []fleet.TenantMetrics `json:"tenants,omitempty"`
	Sessions []SessionMetrics      `json:"sessions"`
	Finished []SessionMetrics      `json:"finished,omitempty"`
}

// sessionMetricsLocked snapshots one session; the caller holds s.mu.
func (s *Server) sessionMetricsLocked(ss *session) SessionMetrics {
	stats := ss.log.Stats()
	elapsed := time.Since(ss.started).Seconds()
	eps := 0.0
	if elapsed > 0 {
		eps = float64(ss.recv.Load()) / elapsed
	}
	conn, _ := ss.attached()
	return SessionMetrics{
		ID:            ss.id,
		Spec:          ss.spec,
		Tenant:        ss.tenantName,
		Modular:       ss.modular,
		Connected:     conn != nil,
		Entries:       ss.recv.Load(),
		EntriesPerSec: eps,
		VerifierLag:   stats.MaxVerifierLag,
		WindowBytes:   ss.windowBytes(),
		Log:           stats,
	}
}

func verdictSummaries(reports []core.ModuleReport) []SessionReport {
	out := make([]SessionReport, len(reports))
	for i, mr := range reports {
		out[i] = SessionReport{Module: mr.Module, Report: mr.Report.Summary()}
	}
	return out
}

// Metrics snapshots the server's counters and per-session pipelines for
// the ops surface.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		UptimeSeconds:    time.Since(s.started).Seconds(),
		SessionsActive:   len(s.sessions),
		SessionsStarted:  s.sessionsStarted.Load(),
		SessionsFinished: s.sessionsFinished.Load(),
		EntriesTotal:     s.entriesTotal.Load(),
		ViolationsTotal:  s.violationsTotal.Load(),
	}
	windowByTenant := make(map[string]int64)
	for _, ss := range s.sessions {
		sm := s.sessionMetricsLocked(ss)
		windowByTenant[ss.tenantName] += sm.WindowBytes
		m.Sessions = append(m.Sessions, sm)
	}
	m.Finished = append(m.Finished, s.recent...)
	s.mu.Unlock()
	if s.sched != nil {
		st := s.sched.Stats()
		m.Sched = &st
	}
	m.Tenants = s.tenants.Snapshot()
	for i := range m.Tenants {
		m.Tenants[i].WindowBytes = windowByTenant[m.Tenants[i].Tenant]
	}
	sortSessionMetrics(m.Sessions)
	return m
}

// sortSessionMetrics orders sessions by id for stable output.
func sortSessionMetrics(ms []SessionMetrics) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j-1].ID > ms[j].ID; j-- {
			ms[j-1], ms[j] = ms[j], ms[j-1]
		}
	}
}
