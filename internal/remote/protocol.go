// Package remote implements VYRD's networked verification subsystem: a
// versioned wire protocol that ships an instrumented process's execution
// log to a verification server over TCP, where each session runs its own
// checker pipeline (the paper's Section 6 deployment — verification on
// spare cores, here spare *machines* — taken off-box).
//
// # Wire protocol (version 1)
//
// A connection opens with a fixed preamble from the client:
//
//	"VYRDRPC" | byte protocol-version
//
// after which both directions speak frames:
//
//	byte frame-type | uvarint payload-length | payload
//
// The client sends one Hello frame (JSON: log format version, spec name,
// refinement mode, session resumption token), and the server answers with
// either a Welcome frame (JSON: session id, resume-from sequence number) or
// a Reject frame (JSON: reason — a FormatVersion mismatch, an unknown spec,
// a draining server). The client then streams Entries frames, whose payload
// is a batch of framed binary entry records (the current event
// FormatVersion, CRC-checksummed since version 3) — byte-for-byte the
// record shape of a persisted VYRDLOG stream, so the codec, its fuzz
// corpus and its throughput carry over unchanged; the stream header is not
// repeated per frame because the format version was pinned in the
// handshake. The server acknowledges progress with Ack frames (uvarint: the
// highest contiguous sequence number ingested), which is what lets the
// client bound its resend buffer. A Fin frame marks the end of the log; the
// server finishes the session's checker and answers with the final Verdict
// frame (JSON: the per-module reports, exactly what in-process checking of
// the same log yields).
//
// A dropped connection does not lose the session: the server keeps the
// session's checker pipeline and its ingest position, and a reconnecting
// client presents the session token, learns the resume-from position from
// the new Welcome, and retransmits only the suffix the server never
// ingested (duplicates below the resume point are discarded by sequence
// number).
package remote

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
)

// ProtoVersion is the remote-protocol version spoken by this build. It is
// independent of event.FormatVersion: the preamble version covers the frame
// grammar, the Hello's format version covers the entry encoding.
const ProtoVersion = 1

// protoMagic opens every connection; the byte after it is ProtoVersion.
const protoMagic = "VYRDRPC"

// Frame types. Client-to-server types are low, server-to-client high, so a
// mis-wired peer fails fast with an "unexpected frame" error instead of
// misparsing a payload.
const (
	frameHello   byte = 1 // client → server: JSON Hello
	frameEntries byte = 2 // client → server: concatenated binary entry frames
	frameFin     byte = 3 // client → server: end of log (empty payload)

	frameWelcome byte = 10 // server → client: JSON Welcome
	frameReject  byte = 11 // server → client: JSON Reject, then close
	frameAck     byte = 12 // server → client: uvarint highest ingested seq
	frameVerdict byte = 13 // server → client: JSON Verdict
)

// maxControlFrame bounds handshake and verdict frames; maxEntriesFrame
// bounds one entry batch. Both guard against a corrupt length prefix
// asking for gigabytes, mirroring the codec's own frame limit.
const (
	maxControlFrame = 4 << 20
	maxEntriesFrame = 8 << 20
)

// Hello is the client handshake.
type Hello struct {
	// FormatVersion is the entry encoding the client ships
	// (event.FormatVersion). The server rejects anything it cannot decode —
	// a version-1 (gob) client gets an explicit version-mismatch reject,
	// not a decode error mid-stream.
	FormatVersion int `json:"format_version"`
	// Spec names the specification (and replayer) the server should check
	// this session against; the server resolves it in its Registry.
	Spec string `json:"spec"`
	// Mode selects the verdict engine: "io" or "view" refinement,
	// "linearize" for the linearizability checker (requires a registry
	// entry with a linearizer), "ltl" for the temporal-property checker
	// (requires a registry entry with a temporal factory), or "" for the
	// server default (view when the spec has a replayer, io otherwise).
	Mode string `json:"mode,omitempty"`
	// Props carries the property sources for an "ltl" session, one
	// "name: formula" line per element; empty selects the spec's built-in
	// property set. Ignored in other modes.
	Props []string `json:"props,omitempty"`
	// FailFast stops the session's checker at the first violation.
	FailFast bool `json:"fail_fast,omitempty"`
	// Modular runs the spec's module set (Fig. 10 fan-out) instead of a
	// single checker; requires a registry entry with modules.
	Modular bool `json:"modular,omitempty"`
	// Session resumes an existing session after a connection drop; empty
	// starts a new one.
	Session string `json:"session,omitempty"`
	// Window advertises the client's resend-buffer bound in entries, so
	// the server can ack often enough that the client never stalls with
	// every buffered entry unacknowledged.
	Window int `json:"window,omitempty"`
	// Tenant is the tenant token the session is accounted (and quota-
	// enforced) under; empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Key is the session routing key. A clustered server hashes it onto
	// the membership ring and rejects with a redirect when another node
	// owns it; empty keys are always served locally.
	Key string `json:"key,omitempty"`
	// Failover asks a clustered server to serve the key even though the
	// ring says another node owns it — set by a client that walked its
	// preference list past an unreachable primary. The session-resume
	// machinery (replay from sequence 1, duplicates skipped) makes the
	// handoff lossless.
	Failover bool `json:"failover,omitempty"`
}

// Reject reason codes (Reject.Reason).
const (
	// RejectRedirect: the ring owner of the Hello's Key is another node;
	// RedirectTo names it and the client should re-dial there.
	RejectRedirect = "redirect"
	// RejectQuota: the tenant is at an admission quota; retrying later
	// (after sessions finish) may succeed.
	RejectQuota = "tenant-quota"
)

// Welcome is the server's handshake acceptance.
type Welcome struct {
	// Session is the token to present when resuming after a drop.
	Session string `json:"session"`
	// ResumeFrom is the highest contiguous sequence number the server has
	// already ingested; the client retransmits everything after it.
	ResumeFrom int64 `json:"resume_from"`
}

// Reject is the server's handshake refusal.
type Reject struct {
	Error string `json:"error"`
	// Reason classifies the refusal (see the Reject* constants); empty
	// for generic errors (unknown spec, version mismatch, draining).
	Reason string `json:"reason,omitempty"`
	// RedirectTo, set with RejectRedirect, is the cluster node that owns
	// the session key.
	RedirectTo string `json:"redirect_to,omitempty"`
}

// Verdict is the final answer of a session: one report per checked module
// (a single anonymous module for non-modular sessions).
type Verdict struct {
	Reports []core.ModuleReport `json:"reports"`
	// Drained marks a verdict forced by server shutdown before the client
	// sent Fin: it covers exactly the prefix the server ingested.
	Drained bool `json:"drained,omitempty"`
}

// Ok reports whether every module's check passed.
func (v *Verdict) Ok() bool { return core.Ok(v.Reports) }

// Report returns the sole report of a non-modular session (nil if the
// verdict is empty).
func (v *Verdict) Report() *core.Report {
	if len(v.Reports) == 0 {
		return nil
	}
	return v.Reports[0].Report
}

// frameWriter serializes frames onto a connection. Writes are mutexed
// because acks flow from the connection handler while a drain-forced
// verdict may be written by the shutdown goroutine.
type frameWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// writeFrame emits one frame and flushes it to the connection.
func (fw *frameWriter) writeFrame(typ byte, payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := fw.bw.Write(hdr[:1+n]); err != nil {
		return err
	}
	if _, err := fw.bw.Write(payload); err != nil {
		return err
	}
	return fw.bw.Flush()
}

// writeJSON emits one JSON-payload frame.
func (fw *frameWriter) writeJSON(typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return fw.writeFrame(typ, payload)
}

// writeAck emits an Ack frame for seq.
func (fw *frameWriter) writeAck(seq int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(seq))
	return fw.writeFrame(frameAck, buf[:n])
}

// readFrame reads one frame, enforcing the per-type size limit.
func readFrame(br *bufio.Reader) (byte, []byte, error) {
	typ, err := br.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("remote: read frame length: %w", err)
	}
	limit := uint64(maxControlFrame)
	if typ == frameEntries {
		limit = maxEntriesFrame
	}
	if size > limit {
		return 0, nil, fmt.Errorf("remote: frame length %d exceeds limit %d (corrupt stream?)", size, limit)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("remote: read frame payload: %w", err)
	}
	return typ, payload, nil
}

// writePreamble/readPreamble bracket the connection open.
func writePreamble(w io.Writer) error {
	_, err := w.Write(append([]byte(protoMagic), ProtoVersion))
	return err
}

func readPreamble(br *bufio.Reader) error {
	hdr := make([]byte, len(protoMagic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return fmt.Errorf("remote: short preamble: %w", err)
	}
	if string(hdr[:len(protoMagic)]) != protoMagic {
		return fmt.Errorf("remote: not a VYRD remote connection")
	}
	if v := hdr[len(protoMagic)]; v != ProtoVersion {
		return fmt.Errorf("remote: protocol version %d, this build speaks %d", v, ProtoVersion)
	}
	return nil
}
