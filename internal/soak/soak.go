// Package soak is the chaos soak harness: it crashes log-producing runs at
// seeded points, recovers the torn log (wal.Recover), replays the recovered
// prefix through the checker, and asserts the verdict matches what an
// uninterrupted reference run says about the same prefix. One base seed
// reproduces an entire campaign — or, via Spec.iterRepro, any single failing
// iteration — in the style of vyrdx repro strings.
//
// Two crash modes:
//
//   - ModeFault crashes in-process: one uncontrolled harness run writes its
//     sink through io.MultiWriter into a reference buffer and a faultfs file
//     that silently drops everything past a seeded byte offset. Because
//     reference and crash bytes come from the same run, no cross-run
//     determinism is needed, and iterations cost only the run itself.
//   - ModeProc crashes for real: a child process replays a controlled
//     schedule (sched.Spec) to a file and is SIGKILLed at a seeded delay;
//     the parent recomputes the reference by replaying the same schedule
//     in-process with identical log options, relying on the controlled
//     scheduler's byte-determinism contract.
//
// In both modes the invariants checked per iteration are the same:
//
//  1. the repaired file is byte-for-byte a prefix of the reference stream;
//  2. the recovered entries are exactly the first LastSeq reference entries;
//  3. the checker's verdict over the repaired file (CheckStream) equals its
//     verdict over that reference prefix (CheckEntries).
package soak

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/wal"
	"repro/vyrd"
)

// Config parameterizes one soak campaign.
type Config struct {
	// Target is the resolved subject implementation (bench.SubjectByName,
	// correct or buggy side — a buggy subject soaks fine: both verdicts are
	// violating and must still agree).
	Target harness.Target
	// Spec is the campaign description.
	Spec Spec
	// ChildCommand builds the command that re-executes a producer child for
	// ModeProc: it must replay the controlled schedule in repro against the
	// campaign subject, streaming the log to path with the given sync
	// cadence (see RunChild). Required in ModeProc, unused in ModeFault.
	ChildCommand func(repro, path string, syncEvery int) *exec.Cmd
	// KillWindow bounds ModeProc's seeded kill delay: iteration i kills its
	// child at a uniform random point in [0, KillWindow). Size it to a few
	// multiples of the child's startup+run time so the campaign mixes
	// early kills (no file yet), mid-run kills (torn tails), and late
	// kills (complete files). Default 50ms.
	KillWindow time.Duration
	// Dir is the scratch directory for ModeProc log files; empty means a
	// fresh temp directory, removed when Run returns.
	Dir string
	// Progress, when non-nil, receives a line per iteration.
	Progress io.Writer
}

// Result tallies a campaign.
type Result struct {
	// Iters counts iterations that ran to verification.
	Iters int
	// Skipped counts ModeProc iterations discarded without verification:
	// the reference schedule fell back to free-running (not reproducible),
	// or the child died before creating its log file.
	Skipped int
	// Truncated counts iterations where recovery cut a torn tail.
	Truncated int
	// CleanCrashes counts iterations whose crash landed on a frame
	// boundary (or after the final flush): the file needed no repair.
	CleanCrashes int
	// Violations counts iterations whose recovered-prefix verdict was
	// violating — and therefore, since Run fails on any mismatch, whose
	// reference verdict was the same violation.
	Violations int
	// DanglingTails counts iterations whose only "violations" were the
	// checker's end-of-log instrumentation diagnostics (a method still in
	// flight when the crash hit). Those are expected for crash prefixes
	// and are tallied apart from real refinement violations; the
	// verdict-match assertion covers them all the same.
	DanglingTails int
	// EntriesRecovered and BytesDropped sum the recovery reports.
	EntriesRecovered int64
	BytesDropped     int64
}

func (r *Result) String() string {
	s := fmt.Sprintf("%d iterations: %d torn-tail recoveries, %d clean crashes",
		r.Iters, r.Truncated, r.CleanCrashes)
	if r.Skipped > 0 {
		s += fmt.Sprintf(", %d skipped", r.Skipped)
	}
	s += fmt.Sprintf("; %d entries recovered, %d bytes dropped; %d violating verdicts, %d dangling tails (all matched the reference)",
		r.EntriesRecovered, r.BytesDropped, r.Violations, r.DanglingTails)
	return s
}

// Run executes the campaign. It returns an error — carrying the failing
// iteration's repro string — the moment any recovery invariant breaks; a
// nil error means every iteration's recovered-prefix verdict matched its
// uninterrupted reference.
func Run(cfg Config) (*Result, error) {
	cfg.Spec = cfg.Spec.withDefaults()
	if cfg.Target.New == nil {
		return nil, errors.New("soak: no target")
	}
	res := &Result{}
	switch cfg.Spec.Mode {
	case ModeFault:
		return res, runFault(cfg, res)
	case ModeProc:
		return res, runProc(cfg, res)
	}
	return nil, fmt.Errorf("soak: unknown mode %v", cfg.Spec.Mode)
}

// level and mode mirror explore.Level/Mode: view refinement when the
// target has a replayer, I/O refinement otherwise.
func level(t harness.Target) vyrd.Level {
	if t.NewReplayer != nil {
		return vyrd.LevelView
	}
	return vyrd.LevelIO
}

func checkOpts(t harness.Target) []core.Option {
	if t.NewReplayer != nil {
		return []core.Option{core.WithMode(core.ModeView), core.WithReplayer(t.NewReplayer())}
	}
	return []core.Option{core.WithMode(core.ModeIO)}
}

// runFault is the in-process crash loop. A calibration run (seed-1, no
// crash) sizes the crash window; each iteration then tees one uncontrolled
// run into a reference buffer and a crash-at-byte file, recovers the file,
// and verifies the three invariants.
func runFault(cfg Config, res *Result) error {
	sp := cfg.Spec
	var calib bytes.Buffer
	if err := runUncontrolled(cfg.Target, sp, sp.Seed-1, &calib); err != nil {
		return fmt.Errorf("soak: calibration run: %w", err)
	}
	estimate := int64(calib.Len())
	if estimate < 2 {
		return fmt.Errorf("soak: calibration run produced a %d-byte log; nothing to crash", estimate)
	}

	for i := 0; i < sp.Iters; i++ {
		seed := sp.Seed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		// Uniform in [1, ~1.25*estimate]: mostly mid-file tears, with a
		// tail of offsets past the end (clean "crash after last write").
		crashAt := 1 + rng.Int63n(estimate+estimate/4)

		mem := faultfs.NewMemFS()
		ffs := faultfs.New(mem, faultfs.Config{Seed: seed, CrashAtByte: crashAt})
		cf, err := ffs.Create("soak.log")
		if err != nil {
			return err
		}
		var ref bytes.Buffer
		if err := runUncontrolled(cfg.Target, sp, seed, io.MultiWriter(&ref, cf)); err != nil {
			return fmt.Errorf("soak: iter %d (%s): %w", i, sp.iterRepro(i), err)
		}
		cf.Close()
		estimate = int64(ref.Len())

		_, rrep, err := wal.RecoverPath(mem, "soak.log")
		if err != nil {
			return fmt.Errorf("soak: iter %d crash@%d (%s): %w", i, crashAt, sp.iterRepro(i), err)
		}
		vrep, err := verifyAgainst(cfg.Target, mem.Bytes("soak.log"), rrep, ref.Bytes())
		if err != nil {
			return fmt.Errorf("soak: iter %d crash@%d (%s): %w", i, crashAt, sp.iterRepro(i), err)
		}
		tally(res, vrep, cfg.Progress, fmt.Sprintf("iter %3d: crash@%-6d %s", i, crashAt, vrep))
	}
	return nil
}

// runUncontrolled performs one plain (OS-scheduled) harness run of sp's
// shape, streaming the log to w, and surfaces any sink error.
func runUncontrolled(t harness.Target, sp Spec, seed int64, w io.Writer) error {
	lvl := level(t)
	log := vyrd.NewLogWith(lvl, vyrd.LogOptions{SyncEvery: sp.SyncEvery})
	if err := log.AttachSink(w); err != nil {
		return err
	}
	harness.RunOnLog(t, harness.Config{
		Threads:      sp.Threads,
		OpsPerThread: sp.Ops,
		KeyPool:      sp.KeyPool,
		Seed:         seed,
		Level:        lvl,
	}, log)
	if err := log.SinkErr(); err != nil {
		return fmt.Errorf("log sink: %w", err)
	}
	return nil
}

// runProc is the process-kill crash loop.
func runProc(cfg Config, res *Result) error {
	sp := cfg.Spec
	if cfg.ChildCommand == nil {
		return errors.New("soak: ModeProc requires Config.ChildCommand")
	}
	if cfg.KillWindow <= 0 {
		cfg.KillWindow = 50 * time.Millisecond
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "vyrdsoak")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}

	for i := 0; i < sp.Iters; i++ {
		seed := sp.Seed + int64(i)
		csp := sched.Spec{
			Subject: sp.Subject,
			Threads: sp.Threads,
			Ops:     sp.Ops,
			KeyPool: sp.KeyPool,
			Seed:    seed,
			D:       sp.D,
			K:       sp.K,
		}
		// The reference: the same controlled schedule replayed in-process
		// with the same log options, so its byte stream is what the child
		// was writing when it died.
		var ref bytes.Buffer
		refStats, err := runControlled(cfg.Target, csp, sp.SyncEvery, &ref)
		if err != nil {
			return fmt.Errorf("soak: iter %d reference (%s): %w", i, sp.iterRepro(i), err)
		}
		if refStats.FreeRun {
			// Not reproducible: the child's bytes would not be a prefix of
			// ours. Skip, like explore discards free-running schedules.
			res.Skipped++
			continue
		}

		path := filepath.Join(dir, fmt.Sprintf("soak-%04d.log", i))
		cmd := cfg.ChildCommand(csp.Repro(), path, sp.SyncEvery)
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("soak: iter %d: start child: %w", i, err)
		}
		delay := time.Duration(rand.New(rand.NewSource(seed ^ killSalt)).Int63n(int64(cfg.KillWindow)))
		timer := time.AfterFunc(delay, func() { cmd.Process.Kill() })
		cmd.Wait() // killed (error) or finished (nil): both are fine
		timer.Stop()

		repaired, rep, err := recoverOnDisk(path)
		if errors.Is(err, fs.ErrNotExist) {
			res.Skipped++ // killed before the file existed
			continue
		}
		if err != nil {
			return fmt.Errorf("soak: iter %d kill@%v (%s): %w", i, delay, sp.iterRepro(i), err)
		}
		vrep, err := verifyAgainst(cfg.Target, repaired, rep, ref.Bytes())
		if err != nil {
			return fmt.Errorf("soak: iter %d kill@%v (%s): %w", i, delay, sp.iterRepro(i), err)
		}
		os.Remove(path)
		tally(res, vrep, cfg.Progress, fmt.Sprintf("iter %3d: kill@%-12v %s", i, delay, vrep))
	}
	return nil
}

// killSalt decorrelates the kill-delay draw from the harness seed.
const killSalt = 0x736f616b // "soak"

// RunChild is the producer side of ModeProc: it replays the controlled
// schedule in repro against t, streaming the log to path with the given
// sync cadence. The process is expected to be SIGKILLed mid-run; when it
// survives to the end it reports free-running schedules as an error so the
// parent's exit-status check (if any) can notice.
func RunChild(t harness.Target, repro, path string, syncEvery int) error {
	csp, err := sched.ParseRepro(repro)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	stats, err := runControlled(t, csp, syncEvery, f)
	if err != nil {
		return err
	}
	if stats.FreeRun {
		return errors.New("soak: child schedule fell back to free-running")
	}
	return nil
}

// runControlled replays one controlled schedule, streaming the log to w
// (explore.runSpec's shape, parameterized by the sink's sync cadence so
// parent reference and child file agree byte-for-byte).
func runControlled(t harness.Target, csp sched.Spec, syncEvery int, w io.Writer) (sched.Stats, error) {
	sch := sched.New(csp.Options())
	lvl := level(t)
	log := vyrd.NewLogWith(lvl, vyrd.LogOptions{SyncEvery: syncEvery})
	if err := log.AttachSink(w); err != nil {
		return sched.Stats{}, err
	}
	cfg := harness.Config{
		Threads:      csp.Threads,
		OpsPerThread: csp.Ops,
		KeyPool:      csp.KeyPool,
		Seed:         csp.Seed,
		Level:        lvl,
		Sched:        sch,
		WorkerSteps:  csp.WorkerSteps,
	}
	harness.RunOnLog(t, cfg, log)
	stats := sch.Wait()
	if err := log.SinkErr(); err != nil {
		return stats, fmt.Errorf("log sink: %w", err)
	}
	return stats, nil
}

// recoverOnDisk recovers path in place and returns the repaired bytes.
func recoverOnDisk(path string) ([]byte, wal.RecoveryReport, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, wal.RecoveryReport{}, err
	}
	_, rep, err := wal.RecoverPath(faultfs.OS{}, path)
	if err != nil {
		return nil, rep, err
	}
	repaired, err := os.ReadFile(path)
	return repaired, rep, err
}

// iterReport is one iteration's verified outcome.
type iterReport struct {
	Recovery  wal.RecoveryReport
	Violating bool
	Dangling  bool
}

func (r iterReport) String() string {
	verdict := "pass"
	switch {
	case r.Violating:
		verdict = "VIOLATION (matched)"
	case r.Dangling:
		verdict = "pass (dangling tail)"
	}
	return fmt.Sprintf("%s | verdict %s", r.Recovery, verdict)
}

// verifyAgainst checks the three per-iteration invariants: byte-prefix,
// entry-prefix, and verdict agreement between the repaired file and the
// reference prefix.
func verifyAgainst(t harness.Target, repaired []byte, rep wal.RecoveryReport, refBytes []byte) (iterReport, error) {
	out := iterReport{Recovery: rep}
	if int64(len(repaired)) != rep.BytesKept {
		return out, fmt.Errorf("repaired file is %d bytes, report says %d", len(repaired), rep.BytesKept)
	}
	if !bytes.HasPrefix(refBytes, repaired) {
		return out, errors.New("repaired file is not a byte-prefix of the reference stream")
	}
	refEntries, err := wal.ReadFile(bytes.NewReader(refBytes))
	if err != nil {
		return out, fmt.Errorf("reference stream unreadable: %w", err)
	}
	if rep.LastSeq > int64(len(refEntries)) {
		return out, fmt.Errorf("recovered through seq %d but the reference has only %d entries", rep.LastSeq, len(refEntries))
	}
	prefix := refEntries[:rep.LastSeq]

	// Verdict over the repaired file (the real post-crash artifact) ...
	fileRep, err := core.CheckStream(bytes.NewReader(repaired), 2, t.NewSpec(), checkOpts(t)...)
	if err != nil {
		return out, fmt.Errorf("check repaired file: %w", err)
	}
	// ... against the verdict over the uninterrupted run's same prefix.
	refRep, err := core.CheckEntries(prefix, t.NewSpec(), checkOpts(t)...)
	if err != nil {
		return out, fmt.Errorf("check reference prefix: %w", err)
	}
	if !sameVerdict(fileRep, refRep) {
		return out, fmt.Errorf("verdict mismatch: repaired file %s, reference prefix %s",
			verdictString(fileRep), verdictString(refRep))
	}
	// Classify the verdict: a prefix that ends with methods still in flight
	// draws end-of-log instrumentation diagnostics from Checker.Finish —
	// expected for crash logs, so an iteration whose violations are all of
	// that kind counts as a dangling tail, not a refinement violation.
	for _, v := range refRep.Violations {
		if v.Kind != core.ViolationInstrumentation {
			out.Violating = true
			break
		}
	}
	out.Dangling = !out.Violating && len(refRep.Violations) > 0
	return out, nil
}

// sameVerdict mirrors explore.SameVerdict's structural comparison:
// violation kinds at the same sequence numbers and methods.
func sameVerdict(a, b *core.Report) bool {
	if len(a.Violations) != len(b.Violations) {
		return false
	}
	for i := range a.Violations {
		va, vb := a.Violations[i], b.Violations[i]
		if va.Kind != vb.Kind || va.Seq != vb.Seq || va.Method != vb.Method {
			return false
		}
	}
	return true
}

func verdictString(r *core.Report) string {
	if len(r.Violations) == 0 {
		return "pass"
	}
	return fmt.Sprintf("%d violation(s), first %s at seq %d", len(r.Violations), r.Violations[0].Kind, r.Violations[0].Seq)
}

func tally(res *Result, rep iterReport, progress io.Writer, line string) {
	res.Iters++
	if rep.Recovery.Truncated {
		res.Truncated++
	} else {
		res.CleanCrashes++
	}
	if rep.Violating {
		res.Violations++
	}
	if rep.Dangling {
		res.DanglingTails++
	}
	res.EntriesRecovered += rep.Recovery.LastSeq
	res.BytesDropped += rep.Recovery.BytesDropped
	if progress != nil {
		fmt.Fprintln(progress, line)
	}
}
