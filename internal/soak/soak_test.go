package soak_test

import (
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/racecheck"
	"repro/internal/soak"
)

func target(t *testing.T, name string, buggy bool) soak.Config {
	t.Helper()
	sub, ok := bench.SubjectByName(name)
	if !ok {
		t.Fatalf("unknown subject %q", name)
	}
	tgt := sub.Correct
	if buggy {
		tgt = sub.Buggy
	}
	return soak.Config{Target: tgt}
}

// TestSoakFaultMode is the fast crash loop: every iteration must recover a
// verifiable prefix whose verdict matches the uninterrupted reference.
func TestSoakFaultMode(t *testing.T) {
	cfg := target(t, "Multiset-Array", false)
	cfg.Spec = soak.Spec{
		Subject: "Multiset-Array",
		Threads: 3, Ops: 8, KeyPool: 4,
		Seed: 1, Iters: 30, Mode: soak.ModeFault, SyncEvery: 8,
	}
	res, err := soak.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 30 {
		t.Fatalf("ran %d iterations, want 30", res.Iters)
	}
	// With crash offsets drawn across the whole stream, at least some must
	// land mid-frame and require truncation, and recovery must be saving
	// real entries.
	if res.Truncated == 0 {
		t.Fatalf("no iteration needed truncation: %s", res)
	}
	if res.EntriesRecovered == 0 {
		t.Fatalf("no entries recovered across the campaign: %s", res)
	}
	// A correct subject must never yield a real refinement violation;
	// dangling-tail diagnostics from cut-off executions are fine.
	if res.Violations != 0 {
		t.Fatalf("correct subject reported real violations: %s", res)
	}
}

// TestSoakFaultModeBuggy soaks a buggy subject: iterations whose recovered
// prefix contains the violation must see the reference agree (Run errors
// on any verdict mismatch). Skipped under -race: the planted bug is an
// intentional data race.
func TestSoakFaultModeBuggy(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("buggy subject races by design; meaningless under -race")
	}
	cfg := target(t, "Multiset-Array", true)
	cfg.Spec = soak.Spec{
		Subject: "Multiset-Array",
		Threads: 3, Ops: 8, KeyPool: 4,
		Seed: 7, Iters: 15, Mode: soak.ModeFault, SyncEvery: 8,
	}
	res, err := soak.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 15 {
		t.Fatalf("ran %d iterations, want 15", res.Iters)
	}
}

// TestSoakProcMode kills real child processes (this test binary re-executed
// via TestSoakChildProcess) at seeded delays and verifies recovery of the
// on-disk files. The window is sized so the campaign mixes early kills,
// mid-run kills and completed runs; all paths must verify.
func TestSoakProcMode(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// A longer child run (more ops, tight sync cadence) so seeded kills land
	// before, during, and after the write phase across the campaign.
	cfg := target(t, "Multiset-Array", false)
	cfg.Spec = soak.Spec{
		Subject: "Multiset-Array",
		Threads: 3, Ops: 60, KeyPool: 4,
		Seed: 1, Iters: 8, Mode: soak.ModeProc, SyncEvery: 4, K: 3000,
	}
	cfg.KillWindow = 60 * time.Millisecond
	cfg.Dir = t.TempDir()
	cfg.ChildCommand = func(repro, path string, syncEvery int) *exec.Cmd {
		cmd := exec.Command(exe, "-test.run", "^TestSoakChildProcess$", "-test.v")
		cmd.Env = append(os.Environ(),
			"SOAK_CHILD=1",
			"SOAK_SCHED="+repro,
			"SOAK_OUT="+path,
			"SOAK_SYNC="+strconv.Itoa(syncEvery),
		)
		return cmd
	}
	res, err := soak.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters+res.Skipped != 8 {
		t.Fatalf("%d iterations + %d skipped, want 8 total", res.Iters, res.Skipped)
	}
	if res.Violations != 0 {
		t.Fatalf("correct subject reported real violations: %s", res)
	}
	t.Logf("proc soak: %s", res)
}

// TestSoakChildProcess is not a test: it is the producer child TestSoakProcMode
// re-executes. It replays the controlled schedule from the environment and
// is usually SIGKILLed before returning.
func TestSoakChildProcess(t *testing.T) {
	if os.Getenv("SOAK_CHILD") != "1" {
		t.Skip("child-process entry point; driven by TestSoakProcMode")
	}
	sub, ok := bench.SubjectByName("Multiset-Array")
	if !ok {
		t.Fatal("subject missing")
	}
	syncEvery, err := strconv.Atoi(os.Getenv("SOAK_SYNC"))
	if err != nil {
		t.Fatal(err)
	}
	if err := soak.RunChild(sub.Correct, os.Getenv("SOAK_SCHED"), os.Getenv("SOAK_OUT"), syncEvery); err != nil {
		t.Fatal(err)
	}
}

// TestReproRoundTrip pins the vyrdsoak/1 repro grammar.
func TestReproRoundTrip(t *testing.T) {
	specs := []soak.Spec{
		{Subject: "Multiset-Array", Threads: 3, Ops: 8, KeyPool: 4, Seed: 42, Iters: 200, Mode: soak.ModeFault, SyncEvery: 16},
		{Subject: "BLinkTree", Threads: 4, Ops: 10, KeyPool: 8, Seed: -7, Iters: 20, Mode: soak.ModeProc, SyncEvery: 8, D: 3, K: 300},
	}
	for _, sp := range specs {
		s := sp.Repro()
		back, err := soak.ParseRepro(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if back.Repro() != s {
			t.Fatalf("round trip changed the repro:\n  %s\n  %s", s, back.Repro())
		}
	}
	if s := specs[0].Repro(); !strings.HasPrefix(s, "vyrdsoak/1;subject=Multiset-Array;") {
		t.Fatalf("unexpected repro form: %s", s)
	}

	for _, bad := range []string{
		"",
		"vyrdsched/1;subject=X",
		"vyrdsoak/1;subject=",
		"vyrdsoak/1;subject=X;threads=3;ops=8;pool=4;seed=1;iters=1", // missing mode
		"vyrdsoak/1;subject=X;threads=3;ops=8;pool=4;seed=1;iters=1;mode=maybe",
		"vyrdsoak/1;subject=X;threads=3;ops=8;pool=4;seed=1;iters=1;mode=fault;sync=0",
		"vyrdsoak/1;subject=X;threads=3;ops=8;pool=4;seed=1;iters=1;mode=fault;bogus=1",
		"vyrdsoak/1;subject=X;threads=3;threads=3;ops=8;pool=4;seed=1;iters=1;mode=fault",
	} {
		if _, err := soak.ParseRepro(bad); err == nil {
			t.Fatalf("ParseRepro accepted %q", bad)
		}
	}
}
