package soak

import (
	"fmt"
	"strconv"
	"strings"
)

// Mode selects how a soak run induces crashes.
type Mode int

const (
	// ModeFault runs the subject uncontrolled in-process with the log sink
	// teed through a faultfs crash-at-byte file: the fastest crash loop (no
	// process spawns, no disk), hundreds of iterations per second.
	ModeFault Mode = iota
	// ModeProc re-executes a child process that replays a controlled
	// schedule to a real file and SIGKILLs it at a seeded delay: the
	// honest end-to-end crash (kernel-visible file state, buffered bytes
	// genuinely lost).
	ModeProc
)

func (m Mode) String() string {
	switch m {
	case ModeFault:
		return "fault"
	case ModeProc:
		return "proc"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Spec is a complete, self-contained description of one soak campaign: the
// harness shape, the base seed, the iteration budget, the crash mode, and
// the sink's sync cadence. Like sched.Spec it round-trips through a
// one-line repro string, so a failing soak run can be pasted into
// `vyrdsoak -repro` and replayed exactly.
type Spec struct {
	// Subject names the registry subject (bench.SubjectByName).
	Subject string
	// Threads, Ops, KeyPool mirror harness.Config.
	Threads int
	Ops     int
	KeyPool int
	// Seed is the base seed; iteration i derives everything — harness
	// randomness, crash offset or kill delay — from Seed+i.
	Seed int64
	// Iters is the number of crash/recover/replay iterations.
	Iters int
	// Mode selects fault-injection or process-kill crashes.
	Mode Mode
	// SyncEvery is the sink's sync-point cadence in entries (small values
	// make short runs leave recoverable prefixes). Both the crashing run
	// and the reference run use it, so their byte streams agree.
	SyncEvery int
	// D and K are the PCT parameters for ModeProc's controlled schedules.
	D int
	K int
}

// reproPrefix versions the repro grammar; bump on incompatible change.
const reproPrefix = "vyrdsoak/1"

// withDefaults fills unset fields with the campaign defaults (matching
// bench.ExploreSpec's harness shape).
func (sp Spec) withDefaults() Spec {
	if sp.Threads <= 0 {
		sp.Threads = 3
	}
	if sp.Ops <= 0 {
		sp.Ops = 8
	}
	if sp.KeyPool <= 0 {
		sp.KeyPool = 4
	}
	if sp.Iters <= 0 {
		sp.Iters = 100
	}
	if sp.SyncEvery <= 0 {
		sp.SyncEvery = 16
	}
	if sp.D <= 0 {
		sp.D = 3
	}
	if sp.K <= 0 {
		sp.K = 300
	}
	return sp
}

// iterRepro returns the repro string for iteration i alone: the same spec
// reduced to one iteration starting at i's derived seed. Soak failures
// embed it so a single bad iteration replays without the whole campaign.
func (sp Spec) iterRepro(i int) string {
	one := sp
	one.Seed = sp.Seed + int64(i)
	one.Iters = 1
	return one.Repro()
}

// Repro renders the spec as its one-line textual form.
func (sp Spec) Repro() string {
	sp = sp.withDefaults()
	var b strings.Builder
	b.WriteString(reproPrefix)
	fmt.Fprintf(&b, ";subject=%s", sp.Subject)
	fmt.Fprintf(&b, ";threads=%d;ops=%d;pool=%d", sp.Threads, sp.Ops, sp.KeyPool)
	fmt.Fprintf(&b, ";seed=%d;iters=%d;mode=%s;sync=%d", sp.Seed, sp.Iters, sp.Mode, sp.SyncEvery)
	if sp.Mode == ModeProc {
		fmt.Fprintf(&b, ";d=%d;k=%d", sp.D, sp.K)
	}
	return b.String()
}

// ParseRepro parses the textual form produced by Repro, validating every
// field. Malformed input returns an error; it never panics.
func ParseRepro(s string) (Spec, error) {
	var sp Spec
	parts := strings.Split(s, ";")
	if len(parts) == 0 || parts[0] != reproPrefix {
		return sp, fmt.Errorf("soak: repro string must start with %q", reproPrefix)
	}
	seen := make(map[string]bool)
	for _, part := range parts[1:] {
		key, val, ok := strings.Cut(part, "=")
		if !ok || key == "" {
			return sp, fmt.Errorf("soak: malformed field %q (want key=value)", part)
		}
		if seen[key] {
			return sp, fmt.Errorf("soak: duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "subject":
			if val == "" {
				return sp, fmt.Errorf("soak: empty subject")
			}
			sp.Subject = val
		case "threads":
			sp.Threads, err = parseBounded(key, val, 1, 255)
		case "ops":
			sp.Ops, err = parseBounded(key, val, 1, 1<<20)
		case "pool":
			sp.KeyPool, err = parseBounded(key, val, 1, 1<<20)
		case "seed":
			sp.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("soak: bad seed %q: %v", val, err)
			}
		case "iters":
			sp.Iters, err = parseBounded(key, val, 1, 1<<20)
		case "mode":
			switch val {
			case "fault":
				sp.Mode = ModeFault
			case "proc":
				sp.Mode = ModeProc
			default:
				return sp, fmt.Errorf("soak: unknown mode %q (want fault or proc)", val)
			}
		case "sync":
			sp.SyncEvery, err = parseBounded(key, val, 1, 1<<20)
		case "d":
			sp.D, err = parseBounded(key, val, 0, 1<<16)
		case "k":
			sp.K, err = parseBounded(key, val, 2, 1<<30)
		default:
			return sp, fmt.Errorf("soak: unknown field %q", key)
		}
		if err != nil {
			return sp, err
		}
	}
	for _, req := range []string{"subject", "threads", "ops", "pool", "seed", "iters", "mode"} {
		if !seen[req] {
			return sp, fmt.Errorf("soak: missing required field %q", req)
		}
	}
	return sp.withDefaults(), nil
}

func parseBounded(key, val string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("soak: bad %s %q: %v", key, val, err)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("soak: %s=%d outside [%d,%d]", key, n, lo, hi)
	}
	return n, nil
}
