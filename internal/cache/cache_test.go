package cache

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkLog(t *testing.T, log *vyrd.Log, mode core.Mode) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(NewReplayer()), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewStore(), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestWriteReadThroughCache(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	c := New(chunk.New(), BugNone)

	c.Write(p, 1, []byte("hello"))
	if data, ok := c.Read(p, 1); !ok || string(data) != "hello" {
		t.Fatalf("Read = %q, %v", data, ok)
	}
	// Fresh write goes to the dirty list.
	if clean, dirty := c.Stats(); clean != 0 || dirty != 1 {
		t.Fatalf("stats clean=%d dirty=%d", clean, dirty)
	}
	// Overwrite an existing dirty entry (commit point 3 path).
	c.Write(p, 1, []byte("world"))
	if data, _ := c.Read(p, 1); string(data) != "world" {
		t.Fatalf("Read after overwrite = %q", data)
	}
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

func TestFlushMovesDirtyToClean(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	cm := chunk.New()
	c := New(cm, BugNone)
	c.Write(p, 1, []byte{1})
	c.Write(p, 2, []byte{2})
	c.Flush(p)
	if clean, dirty := c.Stats(); clean != 2 || dirty != 0 {
		t.Fatalf("stats after flush: clean=%d dirty=%d", clean, dirty)
	}
	// The chunk manager received the bytes.
	if data, _, ok := cm.Read(1); !ok || data[0] != 1 {
		t.Fatalf("chunk read: %x %v", data, ok)
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

func TestWriteToCleanEntryPath(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	c := New(chunk.New(), BugNone)
	c.Write(p, 1, []byte{1})
	c.Flush(p) // entry is now clean
	c.Write(p, 1, []byte{2})
	if clean, dirty := c.Stats(); clean != 0 || dirty != 1 {
		t.Fatalf("commit point 2 path: clean=%d dirty=%d", clean, dirty)
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

func TestRevoke(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	cm := chunk.New()
	c := New(cm, BugNone)
	c.Write(p, 1, []byte{7})
	c.Revoke(p, 1)
	if clean, dirty := c.Stats(); clean != 1 || dirty != 0 {
		t.Fatalf("stats after revoke: clean=%d dirty=%d", clean, dirty)
	}
	if data, _, _ := cm.Read(1); data[0] != 7 {
		t.Fatal("revoke did not write through")
	}
	// Revoking a non-dirty handle is a no-op.
	c.Revoke(p, 1)
	c.Revoke(p, 9)
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

func TestReclaimEvictsCleanOnly(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	wp := log.NewWorkerProbe()
	cm := chunk.New()
	c := New(cm, BugNone)
	c.Write(p, 1, []byte{1})
	c.Write(p, 2, []byte{2})
	c.Flush(p)
	c.Write(p, 3, []byte{3}) // dirty, must survive reclaim
	c.Reclaim(wp)
	if clean, dirty := c.Stats(); clean != 0 || dirty != 1 {
		t.Fatalf("stats after reclaim: clean=%d dirty=%d", clean, dirty)
	}
	// Evicted entries are reloaded from the chunk manager.
	if data, ok := c.Read(p, 1); !ok || data[0] != 1 {
		t.Fatalf("reload after eviction: %x %v", data, ok)
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

func TestReadMissUnwritten(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	c := New(chunk.New(), BugNone)
	if _, ok := c.Read(p, 42); ok {
		t.Fatal("read of an unwritten handle succeeded")
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

// TestBugDeterministicTornFlush forces the Section 7.2.2 scenario exactly:
// a WRITE to an existing dirty entry proceeds without LOCK(clean); halfway
// through its copy, FLUSH snapshots the entry (torn), writes it to the
// Chunk Manager and marks the entry clean. The replica invariant (i) fails
// at the FLUSH commit.
func TestBugDeterministicTornFlush(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	cm := chunk.New()
	c := New(cm, BugUnprotectedWrite)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	old := bytes.Repeat([]byte{0xaa}, 32)
	new_ := bytes.Repeat([]byte{0xbb}, 32)
	c.Write(p1, 1, old) // dirty entry exists

	halfway := make(chan struct{})
	flushed := make(chan struct{})
	var once sync.Once
	c.RaceWindow = func(handle, i int) {
		if i == 16 {
			once.Do(func() {
				close(halfway)
				<-flushed
			})
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Write(p2, 1, new_) // unprotected in-place copy
	}()
	<-halfway
	c.RaceWindow = nil
	c.Flush(p1) // snapshots the half-copied buffer
	close(flushed)
	<-done
	log.Close()

	// The chunk manager holds a torn buffer: half new, half old.
	data, _, _ := cm.Read(1)
	if bytes.Equal(data, old) || bytes.Equal(data, new_) {
		t.Fatalf("flush was not torn: %x", data)
	}

	rep := checkLog(t, log, vyrd.ModeView)
	if rep.Ok() {
		t.Fatalf("view refinement missed the torn flush:\n%s", rep)
	}
	v := rep.First()
	if v.Kind != vyrd.ViolationInvariant && v.Kind != vyrd.ViolationView {
		t.Fatalf("expected an invariant/view violation, got %v", v)
	}
}

// TestBugIOPathViaEvictionAndRead drives the long I/O detection scenario
// the paper describes: after the torn flush, the entry is evicted while
// "clean" and a Read brings the corrupted bytes back from the Chunk
// Manager, which the Store specification rejects.
func TestBugIOPathViaEvictionAndRead(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelIO)
	cm := chunk.New()
	c := New(cm, BugUnprotectedWrite)
	p1 := log.NewProbe()
	p2 := log.NewProbe()
	wp := log.NewWorkerProbe()

	old := bytes.Repeat([]byte{0xaa}, 32)
	new_ := bytes.Repeat([]byte{0xbb}, 32)
	c.Write(p1, 1, old)

	halfway := make(chan struct{})
	flushed := make(chan struct{})
	var once sync.Once
	c.RaceWindow = func(handle, i int) {
		if i == 16 {
			once.Do(func() {
				close(halfway)
				<-flushed
			})
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Write(p2, 1, new_)
	}()
	<-halfway
	c.RaceWindow = nil
	c.Flush(p1)
	close(flushed)
	<-done

	// Eviction drops the (believed-clean) entry; the read then returns the
	// torn bytes from the Chunk Manager.
	c.Reclaim(wp)
	got, ok := c.Read(p1, 1)
	log.Close()
	if !ok {
		t.Fatal("read failed")
	}
	if bytes.Equal(got, new_) || bytes.Equal(got, old) {
		t.Skip("eviction raced oddly; corrupted bytes were not exposed on this schedule")
	}

	rep := checkLog(t, log, vyrd.ModeIO)
	if rep.Ok() {
		t.Fatalf("I/O refinement missed the corrupted read:\n%s", rep)
	}
	if rep.First().Kind != vyrd.ViolationObserver {
		t.Fatalf("expected an observer violation, got %v", rep.First())
	}
}

func TestReplayerInvariants(t *testing.T) {
	r := NewReplayer()
	apply := func(op string, args ...event.Value) {
		t.Helper()
		if err := r.Apply(op, args); err != nil {
			t.Fatalf("%s%v: %v", op, args, err)
		}
	}
	apply("mk-dirty", 1, []byte{1})
	if err := r.Invariants(); err != nil {
		t.Fatal(err)
	}
	apply("flush-write", 1, []byte{1})
	apply("mk-clean", 1)
	if err := r.Invariants(); err != nil {
		t.Fatalf("clean entry matching chunk flagged: %v", err)
	}
	// Invariant (i): clean differs from chunk.
	apply("flush-write", 1, []byte{9})
	if err := r.Invariants(); err == nil {
		t.Fatal("invariant (i) violation not reported")
	}
	apply("flush-write", 1, []byte{1})
	if err := r.Invariants(); err != nil {
		t.Fatal("invariant did not clear")
	}
	// Invariant (ii): handle in both lists.
	apply("mk-dirty", 1, []byte{2})
	if err := r.Invariants(); err == nil {
		t.Fatal("invariant (ii) violation not reported")
	}
}

func TestReplayerViewFallback(t *testing.T) {
	r := NewReplayer()
	apply := func(op string, args ...event.Value) {
		t.Helper()
		if err := r.Apply(op, args); err != nil {
			t.Fatalf("%s%v: %v", op, args, err)
		}
	}
	// Dirty beats clean beats chunk.
	apply("flush-write", 1, []byte{3})
	if v, _ := r.View().GetIntBytes(spaceH, 1); string(v) != "\x03" {
		t.Fatalf("chunk fallback: %x", v)
	}
	apply("load-clean", 1, []byte{3})
	apply("mk-dirty", 1, []byte{4})
	if v, _ := r.View().GetIntBytes(spaceH, 1); string(v) != "\x04" {
		t.Fatalf("dirty priority: %x", v)
	}
	// mk-clean without a dirty entry is malformed.
	r2 := NewReplayer()
	if err := r2.Apply("mk-clean", []event.Value{1}); err == nil {
		t.Fatal("mk-clean with no dirty entry accepted")
	}
}

func TestConcurrentCorrect(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	c := New(chunk.New(), BugNone)
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	wp := log.NewWorkerProbe()
	go func() {
		defer wwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Flush(wp)
				c.Reclaim(wp)
			}
		}
	}()
	var wg sync.WaitGroup
	for th := 0; th < 6; th++ {
		wg.Add(1)
		p := log.NewProbe()
		go func(seed int) {
			defer wg.Done()
			x := seed*13 + 1
			buf := make([]byte, 16)
			for i := 0; i < 200; i++ {
				x = (x*1103515245 + 12345) & 0x7fffffff
				h := x % 4
				switch x % 3 {
				case 0:
					for j := range buf {
						buf[j] = byte(x >> (j % 8))
					}
					c.Write(p, h, buf)
				case 1:
					c.Read(p, h)
				case 2:
					c.Revoke(p, h)
				}
			}
		}(th)
	}
	wg.Wait()
	close(stop)
	wwg.Wait()
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("false positive, %v:\n%s", mode, rep)
		}
	}
}
