// Package cache reimplements the Boxwood Cache module of Fig. 8
// (Section 7.2.1): a write-back cache between clients and the Chunk
// Manager, with clean and dirty entry lists guarded by LOCK(clean), a
// reader-writer RECLAIMLOCK, a FLUSH that writes dirty entries through and
// moves them to the clean list, and a reclaim daemon that evicts clean
// entries.
//
// Together with the Chunk Manager the cache provides an abstract data
// store: a map from handles to byte arrays (the Store specification). Its
// viewI takes each handle's bytes from the cache entry when one exists and
// from the Chunk Manager otherwise, and two invariants are checked on the
// replica at runtime (Section 7.2.1): (i) a clean entry's bytes equal the
// Chunk Manager's, and (ii) no entry is in both lists.
//
// The injected bug is the one the paper found in Boxwood (Section 7.2.2):
// the COPY-TO-CACHE call on the dirty-entry path (Fig. 8 line 23, commit
// point 3) is not protected by LOCK(clean), so a concurrent FLUSH can write
// a torn byte array — partly old, partly new — to the Chunk Manager and
// then mark the entry clean.
package cache

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/chunk"
	"repro/internal/event"
	"repro/internal/spec"
	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation (line 23 holds LOCK(clean)).
	BugNone Bug = iota
	// BugUnprotectedWrite omits LOCK(clean) around the in-place dirty-entry
	// copy (Section 7.2.2).
	BugUnprotectedWrite
	// BugTornUpdate is BugUnprotectedWrite without the explicit
	// runtime.Gosched calls widening the mid-copy race window: wall-clock
	// stress essentially never preempts the tight copy loop, so a torn
	// flush is vanishingly rare. The loop yields to a controlled scheduler
	// (vyrd.Probe.Yield) instead, which can park the writer mid-copy and
	// run a Flush over the half-updated buffer — the planted bug for
	// schedule exploration. While parked the writer holds only the read
	// side of RECLAIMLOCK, so Flush (which takes LOCK(clean) alone)
	// proceeds without blocking.
	BugTornUpdate
)

type entry struct {
	handle int
	data   []byte
}

// Cache is the write-back cache over a Chunk Manager.
type Cache struct {
	chunk *chunk.Manager

	reclaim sync.RWMutex // RECLAIMLOCK: writers = the reclaim daemon
	cleanMu sync.Mutex   // LOCK(clean): guards both entry lists
	clean   map[int]*entry
	dirty   map[int]*entry

	bug Bug

	// RaceWindow, when non-nil, runs between each byte of the buggy
	// unprotected copy, letting tests force a torn flush deterministically.
	RaceWindow func(handle, i int)
}

// New returns an empty cache over the given Chunk Manager.
func New(cm *chunk.Manager, bug Bug) *Cache {
	return &Cache{
		chunk: cm,
		clean: make(map[int]*entry),
		dirty: make(map[int]*entry),
		bug:   bug,
	}
}

// copyToCache is Fig. 8's COPY-TO-CACHE: an in-place, byte-by-byte copy
// into the entry's buffer.
func (c *Cache) copyToCache(e *entry, buf []byte) {
	if len(e.data) != len(buf) {
		e.data = make([]byte, len(buf))
	}
	for i := 0; i < len(buf); i++ {
		if c.RaceWindow != nil {
			c.RaceWindow(e.handle, i)
		}
		e.data[i] = buf[i]
	}
}

// copyToCacheUnprotected is the buggy in-place copy: it additionally yields
// periodically to model OS preemption mid-copy, which is what lets a
// concurrent FLUSH snapshot a torn buffer on a single core.
func (c *Cache) copyToCacheUnprotected(e *entry, buf []byte) {
	if len(e.data) != len(buf) {
		e.data = make([]byte, len(buf))
	}
	for i := 0; i < len(buf); i++ {
		if c.RaceWindow != nil {
			c.RaceWindow(e.handle, i)
		} else if i%16 == 8 {
			runtime.Gosched()
		}
		e.data[i] = buf[i]
	}
}

// copyToCacheTorn is the BugTornUpdate copy: identical to the unprotected
// copy but with controlled-scheduler yields in place of Gosched, so only
// schedule exploration can park inside the window.
func (c *Cache) copyToCacheTorn(p *vyrd.Probe, e *entry, buf []byte) {
	if len(e.data) != len(buf) {
		e.data = make([]byte, len(buf))
	}
	for i := 0; i < len(buf); i++ {
		if c.RaceWindow != nil {
			c.RaceWindow(e.handle, i)
		} else if i%16 == 8 {
			p.Yield()
		}
		e.data[i] = buf[i]
	}
}

// Write stores buf under handle, through the cache (Fig. 8 WRITE). The
// commit point depends on the path taken: a fresh dirty entry (cp1), a
// clean entry moved to the dirty list (cp2), or an in-place update of an
// existing dirty entry (cp3) — the path carrying the injected bug.
func (c *Cache) Write(p *vyrd.Probe, handle int, buf []byte) {
	logBuf := event.CloneBytes(buf)
	inv := p.Call("Write", handle, logBuf)
	c.reclaim.RLock()

	c.cleanMu.Lock()
	ce := c.clean[handle]
	de := c.dirty[handle]
	switch {
	case ce == nil && de == nil:
		te := &entry{handle: handle}
		c.copyToCache(te, buf)
		c.dirty[handle] = te
		inv.BeginCommitBlock()
		p.Write("mk-dirty", handle, logBuf)
		inv.Commit("cp1")
		inv.EndCommitBlock()
		c.cleanMu.Unlock()

	case ce != nil:
		delete(c.clean, handle)
		c.copyToCache(ce, buf)
		c.dirty[handle] = ce
		inv.BeginCommitBlock()
		p.Write("rm-clean", handle)
		p.Write("mk-dirty", handle, logBuf)
		inv.Commit("cp2")
		inv.EndCommitBlock()
		c.cleanMu.Unlock()

	default: // dirty entry exists: update it in place
		if c.bug == BugUnprotectedWrite || c.bug == BugTornUpdate {
			c.cleanMu.Unlock()
			// BUG: the copy should be protected by LOCK(clean); a
			// concurrent FLUSH can snapshot the buffer mid-copy.
			if c.bug == BugTornUpdate {
				c.copyToCacheTorn(p, de, buf)
			} else {
				c.copyToCacheUnprotected(de, buf)
			}
			inv.CommitWrite("cp3", "mk-dirty", handle, logBuf)
		} else {
			c.copyToCache(de, buf)
			inv.CommitWrite("cp3", "mk-dirty", handle, logBuf)
			c.cleanMu.Unlock()
		}
	}

	c.reclaim.RUnlock()
	inv.Return(nil)
}

// Flush writes every dirty entry to the Chunk Manager and moves it to the
// clean list (Fig. 8 FLUSH). The whole pass holds LOCK(clean) and is the
// method's commit block; the logged flush-write entries carry the bytes
// actually written, so a torn buffer reaches the replica exactly as it
// reached the Chunk Manager.
func (c *Cache) Flush(p *vyrd.Probe) {
	inv := p.Call("Flush")
	c.cleanMu.Lock()
	inv.BeginCommitBlock()
	handles := make([]int, 0, len(c.dirty))
	for h := range c.dirty {
		handles = append(handles, h)
	}
	sort.Ints(handles)
	for _, h := range handles {
		te := c.dirty[h]
		data := event.CloneBytes(te.data) // may be torn under the bug
		c.chunk.Write(h, data)
		p.Write("flush-write", h, data)
	}
	for _, h := range handles {
		te := c.dirty[h]
		delete(c.dirty, h)
		c.clean[h] = te
		p.Write("mk-clean", h)
	}
	inv.Commit("flushed")
	inv.EndCommitBlock()
	c.cleanMu.Unlock()
	inv.Return(nil)
}

// Revoke writes a single dirty entry through to the Chunk Manager and moves
// it to the clean list (the paper's revoke method).
func (c *Cache) Revoke(p *vyrd.Probe, handle int) {
	inv := p.Call("Revoke", handle)
	c.cleanMu.Lock()
	te := c.dirty[handle]
	if te == nil {
		inv.Commit("no-op")
		c.cleanMu.Unlock()
		inv.Return(nil)
		return
	}
	inv.BeginCommitBlock()
	data := event.CloneBytes(te.data)
	c.chunk.Write(handle, data)
	p.Write("flush-write", handle, data)
	delete(c.dirty, handle)
	c.clean[handle] = te
	p.Write("mk-clean", handle)
	inv.Commit("revoked")
	inv.EndCommitBlock()
	c.cleanMu.Unlock()
	inv.Return(nil)
}

// Read returns the bytes stored under handle, consulting the dirty list,
// then the clean list, then the Chunk Manager — loading a miss into the
// clean list (observer; only call and return are logged, plus the
// view-support load write).
func (c *Cache) Read(p *vyrd.Probe, handle int) ([]byte, bool) {
	inv := p.Call("Read", handle)
	c.reclaim.RLock()
	c.cleanMu.Lock()
	if de := c.dirty[handle]; de != nil {
		data := event.CloneBytes(de.data)
		c.cleanMu.Unlock()
		c.reclaim.RUnlock()
		inv.Return(data)
		return data, true
	}
	if ce := c.clean[handle]; ce != nil {
		data := event.CloneBytes(ce.data)
		c.cleanMu.Unlock()
		c.reclaim.RUnlock()
		inv.Return(data)
		return data, true
	}
	// Miss: consult the Chunk Manager and load the entry into the clean
	// list. The chunk read happens under LOCK(clean) so the loaded entry is
	// consistent with the store at load time (a simplification relative to
	// production caches, which matters only for invariant (i)).
	data, _, ok := c.chunk.Read(handle)
	if ok {
		c.clean[handle] = &entry{handle: handle, data: event.CloneBytes(data)}
		p.Write("load-clean", handle, data)
	}
	c.cleanMu.Unlock()
	c.reclaim.RUnlock()
	if !ok {
		inv.Return(nil)
		return nil, false
	}
	inv.Return(data)
	return data, true
}

// Reclaim evicts every clean entry, modeling the cache's reclaim daemon. It
// runs as the Compress pseudo-method under the write side of RECLAIMLOCK;
// evicting clean entries must not change the abstract store (invariant (i)
// guarantees the Chunk Manager holds the same bytes).
func (c *Cache) Reclaim(p *vyrd.Probe) {
	inv := p.Call(spec.MethodCompress)
	c.reclaim.Lock()
	c.cleanMu.Lock()
	inv.BeginCommitBlock()
	handles := make([]int, 0, len(c.clean))
	for h := range c.clean {
		handles = append(handles, h)
	}
	sort.Ints(handles)
	for _, h := range handles {
		delete(c.clean, h)
		p.Write("rm-clean", h)
	}
	inv.Commit("reclaimed")
	inv.EndCommitBlock()
	c.cleanMu.Unlock()
	c.reclaim.Unlock()
	inv.Return(nil)
}

// Stats reports the current list sizes, for tests.
func (c *Cache) Stats() (cleanEntries, dirtyEntries int) {
	c.cleanMu.Lock()
	defer c.cleanMu.Unlock()
	return len(c.clean), len(c.dirty)
}
