package cache

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// Replayer reconstructs the cache's clean list, dirty list and the Chunk
// Manager contents from the logged writes, and maintains viewI over them:
// for each handle the bytes come from the dirty entry, else the clean
// entry, else the Chunk Manager (Section 7.2.1's view for Cache + Chunk
// Manager).
//
// Two invariants are verified after every committed update (Section 7.2.1):
//
//	(i)  a clean entry's bytes equal the Chunk Manager's bytes, and
//	(ii) no handle is in both the clean and the dirty list.
//
// Both are tracked incrementally in per-handle sets so Invariants is O(1).
//
// Write operations:
//
//	"mk-dirty" h bytes     install/update the dirty entry for h
//	"rm-clean" h           drop h from the clean list
//	"mk-clean" h           move h's dirty entry to the clean list
//	"load-clean" h bytes   load h into the clean list from the store
//	"flush-write" h bytes  write-through to the Chunk Manager
type Replayer struct {
	clean map[int][]byte
	dirty map[int][]byte
	chunk map[int][]byte
	table *view.Table

	// mismatched holds handles violating invariant (i); overlapping holds
	// handles violating invariant (ii).
	mismatched  map[int]bool
	overlapping map[int]bool
}

// NewReplayer returns an empty replica.
func NewReplayer() *Replayer {
	r := &Replayer{}
	r.Reset()
	return r
}

// Reset implements core.Replayer.
func (r *Replayer) Reset() {
	r.clean = make(map[int][]byte)
	r.dirty = make(map[int][]byte)
	r.chunk = make(map[int][]byte)
	r.table = view.NewTable()
	r.mismatched = make(map[int]bool)
	r.overlapping = make(map[int]bool)
}

// View implements core.Replayer. Keys are "h:<handle>"; values are the
// bytes in the same canonical form as the Store specification.
func (r *Replayer) View() *view.Table { return r.table }

// spaceH is the view key family of handles, shared by name with the Store
// specification so both views land in the same key universe.
var spaceH = view.NewSpace("h")

// refresh re-derives the view entry and invariant membership for handle.
func (r *Replayer) refresh(h int) {
	if b, ok := r.dirty[h]; ok {
		r.table.SetIntBytes(spaceH, int64(h), b)
	} else if b, ok := r.clean[h]; ok {
		r.table.SetIntBytes(spaceH, int64(h), b)
	} else if b, ok := r.chunk[h]; ok {
		r.table.SetIntBytes(spaceH, int64(h), b)
	} else {
		r.table.DeleteInt(spaceH, int64(h))
	}

	cb, inClean := r.clean[h]
	_, inDirty := r.dirty[h]
	if inClean && inDirty {
		r.overlapping[h] = true
	} else {
		delete(r.overlapping, h)
	}
	if inClean {
		if sb, ok := r.chunk[h]; !ok || string(sb) != string(cb) {
			r.mismatched[h] = true
		} else {
			delete(r.mismatched, h)
		}
	} else {
		delete(r.mismatched, h)
	}
}

func handleAndBytes(op string, args []event.Value) (int, []byte, error) {
	if len(args) != 2 {
		return 0, nil, fmt.Errorf("cache replay: %s wants handle and bytes, got %v", op, args)
	}
	h, ok := event.Int(args[0])
	if !ok {
		return 0, nil, fmt.Errorf("cache replay: %s non-integer handle %v", op, args[0])
	}
	b, ok := event.Bytes(args[1])
	if !ok {
		return 0, nil, fmt.Errorf("cache replay: %s payload is not bytes: %T", op, args[1])
	}
	return h, b, nil
}

func handleOnly(op string, args []event.Value) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("cache replay: %s wants a handle, got %v", op, args)
	}
	h, ok := event.Int(args[0])
	if !ok {
		return 0, fmt.Errorf("cache replay: %s non-integer handle %v", op, args[0])
	}
	return h, nil
}

// Apply implements core.Replayer.
func (r *Replayer) Apply(op string, args []event.Value) error {
	switch op {
	case "mk-dirty":
		h, b, err := handleAndBytes(op, args)
		if err != nil {
			return err
		}
		r.dirty[h] = b
		r.refresh(h)
		return nil

	case "rm-clean":
		h, err := handleOnly(op, args)
		if err != nil {
			return err
		}
		delete(r.clean, h)
		r.refresh(h)
		return nil

	case "mk-clean":
		h, err := handleOnly(op, args)
		if err != nil {
			return err
		}
		b, ok := r.dirty[h]
		if !ok {
			return fmt.Errorf("cache replay: mk-clean for handle %d with no dirty entry", h)
		}
		delete(r.dirty, h)
		r.clean[h] = b
		r.refresh(h)
		return nil

	case "load-clean":
		h, b, err := handleAndBytes(op, args)
		if err != nil {
			return err
		}
		r.clean[h] = b
		r.refresh(h)
		return nil

	case "flush-write":
		h, b, err := handleAndBytes(op, args)
		if err != nil {
			return err
		}
		r.chunk[h] = b
		r.refresh(h)
		return nil
	}
	return fmt.Errorf("cache replay: unknown op %q", op)
}

// Invariants implements core.Replayer.
func (r *Replayer) Invariants() error {
	if len(r.mismatched) > 0 {
		for h := range r.mismatched {
			return fmt.Errorf("invariant (i) violated: clean entry for handle %d differs from the chunk manager", h)
		}
	}
	if len(r.overlapping) > 0 {
		for h := range r.overlapping {
			return fmt.Errorf("invariant (ii) violated: handle %d is in both the clean and dirty lists", h)
		}
	}
	return nil
}
