package cache

import (
	"math/rand"
	"runtime"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// targetHandles bounds the handle space so writes collide, and bufLen keeps
// buffers a fixed size so dirty-entry updates copy in place (the shape the
// Section 7.2.2 bug needs).
const (
	targetHandles = 8
	bufLen        = 64
)

// Target adapts the Cache + Chunk Manager combination to the random test
// harness (Section 7.1). The reclaim daemon runs continuously as the
// worker, and flushes happen both from application threads and the worker,
// as in Boxwood.
func Target(bug Bug) harness.Target {
	return TargetSized(bug, targetHandles, bufLen)
}

// TargetSized is Target with an explicit handle-space size and buffer
// length. Schedule exploration uses smaller sizes than the stress default:
// shorter buffers mean fewer yields per copy (shorter schedules to search
// and shrink) while still leaving preemption points inside the torn-copy
// window.
func TargetSized(bug Bug, handles, buflen int) harness.Target {
	return harness.Target{
		Name: "Cache",
		New: func(log *vyrd.Log) harness.Instance {
			c := New(chunk.New(), bug)
			return harness.Instance{
				Methods: []harness.Method{
					{Name: "Write", Weight: 40, Run: func(p *vyrd.Probe, rng *rand.Rand, pick func() int) {
						buf := make([]byte, buflen)
						for i := range buf {
							buf[i] = byte(rng.Intn(256))
						}
						c.Write(p, pick()%handles, buf)
					}},
					{Name: "Read", Weight: 35, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						c.Read(p, pick()%handles)
					}},
					{Name: "Flush", Weight: 15, Run: func(p *vyrd.Probe, _ *rand.Rand, _ func() int) {
						c.Flush(p)
					}},
					{Name: "Revoke", Weight: 10, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						c.Revoke(p, pick()%handles)
					}},
				},
				WorkerStep: func(p *vyrd.Probe) {
					c.Flush(p)
					c.Reclaim(p)
					runtime.Gosched()
				},
			}
		},
		NewSpec:     func() core.Spec { return spec.NewStore() },
		NewReplayer: func() core.Replayer { return NewReplayer() },
	}
}
