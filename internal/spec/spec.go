// Package spec provides the executable specifications used throughout the
// repository: method-atomic, deterministic state transition systems in the
// sense of Section 3.2 of the paper. Each specification validates observed
// return values (ApplyMutator/CheckObserver) and maintains a live viewS
// table for view refinement.
//
// Specifications are deliberately permissive where the paper's notion of
// refinement demands it (Section 1): operations that may fail under
// resource contention accept an unsuccessful return value with the state
// left unchanged, which plain atomicity checking cannot express.
package spec

import (
	"fmt"
	"strconv"

	"repro/internal/event"
)

// MethodCompress is the pseudo-method under which internal maintenance
// threads (compression, flushing, reclaiming) run. Its specification action
// is a no-op: maintenance must not change the abstract state, and view
// refinement checks exactly that at each of its commits (Section 7.2.3).
const MethodCompress = "Compress"

// errRet builds the standard "return value not permitted" error.
func errRet(method string, args []event.Value, ret event.Value, why string) error {
	return fmt.Errorf("%s%v -> %v: %s", method, args, ret, why)
}

// retSuccess interprets a mutator return value as success/failure, treating
// an Exceptional value as failure (Section 3 models exceptional termination
// as a special return value).
func retSuccess(ret event.Value) (success, ok bool) {
	if event.IsExceptional(ret) {
		return false, true
	}
	b, ok := ret.(bool)
	return b, ok
}

// itoa is the canonical rendering of integer keys in view tables.
func itoa(n int) string { return strconv.Itoa(n) }
