package spec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestStoreWriteAndRead(t *testing.T) {
	s := NewStore()
	mustApply(t, s, "Write", []event.Value{7, []byte{1, 2, 3}}, nil)
	if b, ok := s.Get(7); !ok || string(b) != "\x01\x02\x03" {
		t.Fatalf("Get(7) = %x, %v", b, ok)
	}
	if !s.CheckObserver("Read", []event.Value{7}, []byte{1, 2, 3}) {
		t.Fatal("Read rejected stored bytes")
	}
	if s.CheckObserver("Read", []event.Value{7}, []byte{1, 2, 4}) {
		t.Fatal("Read accepted wrong bytes")
	}
	mustApply(t, s, "Write", []event.Value{7, []byte{9}}, nil)
	if !s.CheckObserver("Read", []event.Value{7}, []byte{9}) {
		t.Fatal("overwrite lost")
	}
}

func TestStoreReadUnwrittenHandle(t *testing.T) {
	s := NewStore()
	if !s.CheckObserver("Read", []event.Value{1}, nil) {
		t.Fatal("Read of an unwritten handle must permit nil")
	}
	if s.CheckObserver("Read", []event.Value{1}, []byte{}) {
		t.Fatal("Read of an unwritten handle accepted bytes")
	}
}

func TestStoreMaintenanceIsAbstractNoOp(t *testing.T) {
	s := NewStore()
	mustApply(t, s, "Write", []event.Value{1, []byte{5}}, nil)
	h := s.View().Hash()
	mustApply(t, s, "Flush", nil, nil)
	mustApply(t, s, "Revoke", []event.Value{1}, nil)
	mustApply(t, s, MethodCompress, nil, nil)
	if s.View().Hash() != h {
		t.Fatal("maintenance changed the abstract store")
	}
	if err := s.ApplyMutator("Flush", nil, true); err == nil {
		t.Fatal("Flush with a return value accepted")
	}
}

func TestStoreRejectsMalformed(t *testing.T) {
	s := NewStore()
	bad := []struct {
		m    string
		args []event.Value
		ret  event.Value
	}{
		{"Write", []event.Value{1}, nil},
		{"Write", []event.Value{"h", []byte{1}}, nil},
		{"Write", []event.Value{1, "not-bytes"}, nil},
		{"Write", []event.Value{1, []byte{1}}, true},
		{"Unknown", nil, nil},
	}
	for _, c := range bad {
		if err := s.ApplyMutator(c.m, c.args, c.ret); err == nil {
			t.Fatalf("accepted %s%v -> %v", c.m, c.args, c.ret)
		}
	}
	if s.CheckObserver("Read", nil, nil) {
		t.Fatal("Read with no handle accepted")
	}
}

func TestStoreViewCanonicalForm(t *testing.T) {
	s := NewStore()
	mustApply(t, s, "Write", []event.Value{3, []byte{0xab}}, nil)
	if v, ok := s.View().GetIntBytes(spaceH, 3); !ok || string(v) != "\xab" {
		t.Fatalf("view h:3 = %x, %v", v, ok)
	}
}

// TestQuickStoreAgainstModel compares against a map model.
func TestQuickStoreAgainstModel(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		model := map[int][]byte{}
		for i := 0; i < int(n); i++ {
			h := rng.Intn(6)
			switch rng.Intn(3) {
			case 0:
				buf := make([]byte, rng.Intn(8))
				rng.Read(buf)
				if s.ApplyMutator("Write", []event.Value{h, buf}, nil) != nil {
					return false
				}
				model[h] = buf
			case 1:
				want := model[h] // nil when absent
				if _, present := model[h]; !present {
					if !s.CheckObserver("Read", []event.Value{h}, nil) {
						return false
					}
					continue
				}
				if !s.CheckObserver("Read", []event.Value{h}, want) {
					return false
				}
			case 2:
				if s.ApplyMutator("Flush", nil, nil) != nil {
					return false
				}
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
