package spec

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// RegisterShift is the encoding width of one seqlock data word: a Read
// returns hi<<RegisterShift | lo, where hi and lo are the two words the
// implementation stores. Written values must fit in RegisterShift bits
// (the harness key pool does, by orders of magnitude).
const RegisterShift = 12

// Register is the executable specification of a single multi-word
// register: the abstract data type implemented by the seqlock
// (internal/seqlock). The implementation stores each written value into
// two separate words; a Read returns both, packed. The specification
// therefore accepts only "untorn" observations — both words from the same
// Write — which is exactly what a seqlock's validation protocol
// guarantees and what the planted torn-read bug breaks.
//
// Methods and return values:
//
//	Write(v) -> nil  mutator; sets the register to v (0 <= v < 1<<RegisterShift)
//	Read() -> int    observer; v<<RegisterShift | v for the current v
type Register struct {
	v     int
	table *view.Table
}

// spaceR is the view key family of the register's single cell ("r:0").
var spaceR = view.NewSpace("r")

// NewRegister returns a register specification holding zero.
func NewRegister() *Register {
	s := &Register{}
	s.Reset()
	return s
}

// Reset implements core.Spec.
func (s *Register) Reset() {
	s.v = 0
	s.table = view.NewTable()
	s.table.SetInt(spaceR, 0, 0)
}

// View implements core.Spec. The single key is "r:0"; the value is v.
func (s *Register) View() *view.Table { return s.table }

// IsMutator implements core.Spec.
func (s *Register) IsMutator(method string) bool {
	return method != "Read"
}

// Value returns the current register value.
func (s *Register) Value() int { return s.v }

// ApplyMutator implements core.Spec.
func (s *Register) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	switch method {
	case "Write":
		if len(args) != 1 {
			return errRet(method, args, ret, "expected one value")
		}
		v, ok := event.Int(args[0])
		if !ok {
			return errRet(method, args, ret, "non-integer value")
		}
		if v < 0 || v >= 1<<RegisterShift {
			return errRet(method, args, ret, fmt.Sprintf("value outside [0,%d)", 1<<RegisterShift))
		}
		if ret != nil {
			return errRet(method, args, ret, "Write returns nothing")
		}
		s.v = v
		s.table.SetInt(spaceR, 0, int64(v))
		return nil

	case MethodCompress:
		return nil
	}
	return fmt.Errorf("unknown mutator %q", method)
}

// CheckObserver implements core.Spec.
func (s *Register) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	if method != "Read" || len(args) != 0 {
		return false
	}
	got, ok := event.Int(ret)
	if !ok {
		return false
	}
	return got == s.v<<RegisterShift|s.v
}
