package spec

import (
	"repro/internal/event"
	"repro/internal/view"
)

// LedgerAccounts is the number of ledger accounts. It lives here (rather
// than in internal/ledger, which imports this package for its Target) so
// the spec and the implementation share one definition without a cycle;
// LedgerAccounts aliases it.
const LedgerAccounts = 2

// Ledger is the executable specification of the two-account bank ledger
// (internal/ledger): per-account integer balances and a one-way seal latch.
// Locking is an implementation detail — the spec knows nothing of it; the
// locking discipline is checked separately by the temporal engine over the
// lock-acq/lock-rel entries in the log.
//
// Methods and return values:
//
//	Deposit(a) -> bool       mutator; true adds one unit to a, false is
//	                         permitted only when a is sealed
//	Transfer(f, t) -> bool   mutator; true moves one unit from f to t,
//	                         false is permitted only when f==t or either
//	                         account is sealed
//	Seal(a) -> bool          mutator; true seals a (must not be sealed),
//	                         false is permitted only when already sealed
//	Get(a) -> int            observer; a's balance
type Ledger struct {
	bal    [LedgerAccounts]int64
	sealed [LedgerAccounts]bool
	table  *view.Table
}

// The view spaces mirror the ledger replayer's by name, so viewS and viewI
// share a canonical form: "bal:<acct>" and "sealed:<acct>".
var (
	spaceLedgerBal    = view.NewSpace("bal")
	spaceLedgerSealed = view.NewSpace("sealed")
)

// NewLedger returns the initial ledger specification (all balances zero,
// nothing sealed).
func NewLedger() *Ledger {
	s := &Ledger{}
	s.Reset()
	return s
}

// Reset implements core.Spec.
func (s *Ledger) Reset() {
	s.bal = [LedgerAccounts]int64{}
	s.sealed = [LedgerAccounts]bool{}
	s.table = view.NewTable()
}

// View implements core.Spec.
func (s *Ledger) View() *view.Table { return s.table }

// IsMutator implements core.Spec.
func (s *Ledger) IsMutator(method string) bool {
	switch method {
	case "Deposit", "Transfer", "Seal":
		return true
	case "Get":
		return false
	}
	// Unknown methods reach ApplyMutator and are rejected there.
	return true
}

// Balance returns account a's balance (test hook).
func (s *Ledger) Balance(a int) int64 { return s.bal[a] }

func (s *Ledger) setBal(a int, v int64) {
	s.bal[a] = v
	s.table.SetInt(spaceLedgerBal, int64(a), v)
}

func acctArg(v event.Value) (int, bool) {
	a, ok := event.Int(v)
	if !ok || a < 0 || a >= LedgerAccounts {
		return 0, false
	}
	return a, true
}

// ApplyMutator implements core.Spec.
func (s *Ledger) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	switch method {
	case "Deposit":
		if len(args) != 1 {
			return errRet(method, args, ret, "expected one argument")
		}
		a, ok := acctArg(args[0])
		if !ok {
			return errRet(method, args, ret, "bad account")
		}
		success, ok := retSuccess(ret)
		if !ok {
			return errRet(method, args, ret, "return value must be bool")
		}
		if !success {
			if !s.sealed[a] {
				return errRet(method, args, ret, "refused but account is not sealed")
			}
			return nil
		}
		if s.sealed[a] {
			return errRet(method, args, ret, "deposit into sealed account")
		}
		s.setBal(a, s.bal[a]+1)
		return nil

	case "Transfer":
		if len(args) != 2 {
			return errRet(method, args, ret, "expected two arguments")
		}
		from, okf := acctArg(args[0])
		to, okt := acctArg(args[1])
		if !okf || !okt {
			return errRet(method, args, ret, "bad account")
		}
		success, ok := retSuccess(ret)
		if !ok {
			return errRet(method, args, ret, "return value must be bool")
		}
		if !success {
			if from != to && !s.sealed[from] && !s.sealed[to] {
				return errRet(method, args, ret, "refused but both accounts are open")
			}
			return nil
		}
		if from == to || s.sealed[from] || s.sealed[to] {
			return errRet(method, args, ret, "transfer touching a sealed or identical account")
		}
		s.setBal(from, s.bal[from]-1)
		s.setBal(to, s.bal[to]+1)
		return nil

	case "Seal":
		if len(args) != 1 {
			return errRet(method, args, ret, "expected one argument")
		}
		a, ok := acctArg(args[0])
		if !ok {
			return errRet(method, args, ret, "bad account")
		}
		success, ok := retSuccess(ret)
		if !ok {
			return errRet(method, args, ret, "return value must be bool")
		}
		if success == s.sealed[a] {
			return errRet(method, args, ret, "seal verdict disagrees with latch state")
		}
		if success {
			s.sealed[a] = true
			s.table.SetInt(spaceLedgerSealed, int64(a), 1)
		}
		return nil
	}
	return errRet(method, args, ret, "unknown mutator")
}

// CheckObserver implements core.Spec.
func (s *Ledger) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	if method != "Get" || len(args) != 1 {
		return false
	}
	a, ok := acctArg(args[0])
	if !ok {
		return false
	}
	got, ok := event.Int(ret)
	return ok && int64(got) == s.bal[a]
}
