package spec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestVectorAddAndObservers(t *testing.T) {
	s := NewVector()
	mustApply(t, s, "AddElement", []event.Value{10}, nil)
	mustApply(t, s, "AddElement", []event.Value{20}, nil)
	if !s.CheckObserver("Size", nil, 2) {
		t.Fatal("Size -> 2 rejected")
	}
	if s.CheckObserver("Size", nil, 3) {
		t.Fatal("Size -> 3 accepted")
	}
	if !s.CheckObserver("ElementAt", []event.Value{0}, 10) ||
		!s.CheckObserver("ElementAt", []event.Value{1}, 20) {
		t.Fatal("ElementAt rejected stored values")
	}
	if !s.CheckObserver("ElementAt", []event.Value{5}, event.Exceptional{Reason: "x"}) {
		t.Fatal("ElementAt out of range must permit exceptional termination")
	}
	if s.CheckObserver("ElementAt", []event.Value{5}, 0) {
		t.Fatal("ElementAt out of range accepted a value")
	}
}

func TestVectorLastIndexOf(t *testing.T) {
	s := NewVector()
	for _, x := range []int{5, 7, 5, 9} {
		mustApply(t, s, "AddElement", []event.Value{x}, nil)
	}
	if !s.CheckObserver("LastIndexOf", []event.Value{5}, 2) {
		t.Fatal("LastIndexOf(5) -> 2 rejected")
	}
	if s.CheckObserver("LastIndexOf", []event.Value{5}, 0) {
		t.Fatal("LastIndexOf(5) -> 0 accepted (not the last index)")
	}
	if !s.CheckObserver("LastIndexOf", []event.Value{8}, -1) {
		t.Fatal("LastIndexOf(absent) -> -1 rejected")
	}
	// The specification never permits an exceptional LastIndexOf — this is
	// exactly how the Vector bug is detected (Section 7.4.1).
	if s.CheckObserver("LastIndexOf", []event.Value{5}, event.Exceptional{Reason: "AIOOBE"}) {
		t.Fatal("exceptional LastIndexOf accepted")
	}
}

func TestVectorInsertAndRemoveAt(t *testing.T) {
	s := NewVector()
	mustApply(t, s, "AddElement", []event.Value{1}, nil)
	mustApply(t, s, "AddElement", []event.Value{3}, nil)
	mustApply(t, s, "InsertElementAt", []event.Value{2, 1}, nil)
	for i, want := range []int{1, 2, 3} {
		if !s.CheckObserver("ElementAt", []event.Value{i}, want) {
			t.Fatalf("element %d != %d", i, want)
		}
	}
	// Out-of-range insert must terminate exceptionally; a silent success is
	// rejected and so is an exceptional termination of an in-range insert.
	mustApply(t, s, "InsertElementAt", []event.Value{9, 99}, event.Exceptional{Reason: "x"})
	if err := s.ApplyMutator("InsertElementAt", []event.Value{9, 99}, nil); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
	if err := s.ApplyMutator("InsertElementAt", []event.Value{9, 0}, event.Exceptional{Reason: "x"}); err == nil {
		t.Fatal("exceptional in-range insert accepted")
	}

	mustApply(t, s, "RemoveElementAt", []event.Value{1}, nil)
	if !s.CheckObserver("Size", nil, 2) || !s.CheckObserver("ElementAt", []event.Value{1}, 3) {
		t.Fatal("remove shifted incorrectly")
	}
	mustApply(t, s, "RemoveElementAt", []event.Value{7}, event.Exceptional{Reason: "x"})
	if err := s.ApplyMutator("RemoveElementAt", []event.Value{0}, event.Exceptional{Reason: "x"}); err == nil {
		t.Fatal("exceptional in-range remove accepted")
	}
}

func TestVectorRemoveAllAndTrim(t *testing.T) {
	s := NewVector()
	for i := 0; i < 5; i++ {
		mustApply(t, s, "AddElement", []event.Value{i}, nil)
	}
	h := s.View().Hash()
	mustApply(t, s, "TrimToSize", nil, nil)
	if s.View().Hash() != h {
		t.Fatal("TrimToSize changed the abstract state")
	}
	mustApply(t, s, "RemoveAllElements", nil, nil)
	if s.Len() != 0 || !s.CheckObserver("Size", nil, 0) {
		t.Fatal("RemoveAllElements did not clear")
	}
	if v, ok := s.View().Get("len"); !ok || v != "0" {
		t.Fatalf("view len = %q", v)
	}
	if _, ok := s.View().Get("i:0"); ok {
		t.Fatal("stale index entries in the view")
	}
}

func TestVectorViewTracksIndices(t *testing.T) {
	s := NewVector()
	mustApply(t, s, "AddElement", []event.Value{10}, nil)
	mustApply(t, s, "AddElement", []event.Value{20}, nil)
	mustApply(t, s, "RemoveElementAt", []event.Value{0}, nil)
	if v, _ := s.View().Get("i:0"); v != "20" {
		t.Fatalf("view i:0 = %q after shift", v)
	}
	if _, ok := s.View().Get("i:1"); ok {
		t.Fatal("view kept a truncated index")
	}
}

// TestQuickVectorAgainstModel compares against a slice model under random
// valid operations.
func TestQuickVectorAgainstModel(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewVector()
		var model []int
		for i := 0; i < int(n); i++ {
			switch rng.Intn(5) {
			case 0:
				x := rng.Intn(50)
				if s.ApplyMutator("AddElement", []event.Value{x}, nil) != nil {
					return false
				}
				model = append(model, x)
			case 1:
				x, pos := rng.Intn(50), rng.Intn(len(model)+1)
				if s.ApplyMutator("InsertElementAt", []event.Value{x, pos}, nil) != nil {
					return false
				}
				model = append(model, 0)
				copy(model[pos+1:], model[pos:])
				model[pos] = x
			case 2:
				if len(model) == 0 {
					continue
				}
				pos := rng.Intn(len(model))
				if s.ApplyMutator("RemoveElementAt", []event.Value{pos}, nil) != nil {
					return false
				}
				model = append(model[:pos], model[pos+1:]...)
			case 3:
				if !s.CheckObserver("Size", nil, len(model)) {
					return false
				}
			case 4:
				x := rng.Intn(50)
				want := -1
				for j := len(model) - 1; j >= 0; j-- {
					if model[j] == x {
						want = j
						break
					}
				}
				if !s.CheckObserver("LastIndexOf", []event.Value{x}, want) {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for i, x := range model {
			if !s.CheckObserver("ElementAt", []event.Value{i}, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
