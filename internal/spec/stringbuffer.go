package spec

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// StringBuffers is the executable specification of a family of
// java.util.StringBuffer analogues (Section 7.4.1), addressed by small
// integer identifiers so that the cross-buffer append — the method carrying
// the paper's known bug — is expressible in a single specification.
//
// Methods and return values:
//
//	Append(id, s) -> nil            mutator; buf[id] += s
//	AppendBuffer(dst, src) -> nil   mutator; buf[dst] += buf[src], atomically.
//	                                An exceptional termination is NOT
//	                                permitted: the "copying from an
//	                                unprotected StringBuffer" bug manifests
//	                                as exactly that (or as corrupt contents,
//	                                which view refinement catches).
//	Delete(id, start, end) -> nil | Exceptional  mutator; java semantics:
//	                                exceptional iff start<0, start>len or start>end;
//	                                end is clipped to len
//	SetLength(id, n) -> nil | Exceptional        mutator; exceptional iff n<0;
//	                                truncates or zero-extends
//	ToString(id) -> string          observer
//	Length(id) -> int               observer
type StringBuffers struct {
	n     int
	bufs  []string
	table *view.Table
}

// NewStringBuffers returns a specification for n empty buffers with
// identifiers 0..n-1.
func NewStringBuffers(n int) *StringBuffers {
	s := &StringBuffers{n: n}
	s.Reset()
	return s
}

// Reset implements core.Spec.
func (s *StringBuffers) Reset() {
	s.bufs = make([]string, s.n)
	s.table = view.NewTable()
	for i := 0; i < s.n; i++ {
		s.table.Set("sb:"+itoa(i), "")
	}
}

// View implements core.Spec. Keys are "sb:<id>"; values are contents.
func (s *StringBuffers) View() *view.Table { return s.table }

// IsMutator implements core.Spec.
func (s *StringBuffers) IsMutator(method string) bool {
	switch method {
	case "ToString", "Length":
		return false
	}
	return true
}

// Content returns the contents of buffer id.
func (s *StringBuffers) Content(id int) string { return s.bufs[id] }

func (s *StringBuffers) id(args []event.Value, pos int) (int, bool) {
	if pos >= len(args) {
		return 0, false
	}
	id, ok := event.Int(args[pos])
	if !ok || id < 0 || id >= s.n {
		return 0, false
	}
	return id, true
}

func (s *StringBuffers) set(id int, content string) {
	s.bufs[id] = content
	s.table.Set("sb:"+itoa(id), content)
}

// ApplyMutator implements core.Spec.
func (s *StringBuffers) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	switch method {
	case "Append":
		id, okid := s.id(args, 0)
		if !okid || len(args) != 2 {
			return errRet(method, args, ret, "expected buffer id and string")
		}
		str, ok := args[1].(string)
		if !ok {
			return errRet(method, args, ret, "second argument must be a string")
		}
		if ret != nil {
			return errRet(method, args, ret, "Append returns nothing")
		}
		s.set(id, s.bufs[id]+str)
		return nil

	case "AppendBuffer":
		dst, okd := s.id(args, 0)
		src, oks := s.id(args, 1)
		if !okd || !oks || len(args) != 2 {
			return errRet(method, args, ret, "expected destination and source buffer ids")
		}
		if ret != nil {
			return errRet(method, args, ret, "AppendBuffer returns nothing (exceptional termination is not permitted)")
		}
		s.set(dst, s.bufs[dst]+s.bufs[src])
		return nil

	case "Delete":
		id, okid := s.id(args, 0)
		if !okid || len(args) != 3 {
			return errRet(method, args, ret, "expected buffer id, start and end")
		}
		start, oks := event.Int(args[1])
		end, oke := event.Int(args[2])
		if !oks || !oke {
			return errRet(method, args, ret, "non-integer indices")
		}
		content := s.bufs[id]
		bad := start < 0 || start > len(content) || start > end
		if event.IsExceptional(ret) {
			if !bad {
				return errRet(method, args, ret, "exceptional termination but the range is valid in the witness interleaving")
			}
			return nil
		}
		if ret != nil {
			return errRet(method, args, ret, "return value must be nil or exceptional")
		}
		if bad {
			return errRet(method, args, ret, "range invalid in the witness interleaving")
		}
		if end > len(content) {
			end = len(content)
		}
		s.set(id, content[:start]+content[end:])
		return nil

	case "SetLength":
		id, okid := s.id(args, 0)
		if !okid || len(args) != 2 {
			return errRet(method, args, ret, "expected buffer id and length")
		}
		n, ok := event.Int(args[1])
		if !ok {
			return errRet(method, args, ret, "non-integer length")
		}
		if event.IsExceptional(ret) {
			if n >= 0 {
				return errRet(method, args, ret, "exceptional termination but the length is valid")
			}
			return nil
		}
		if ret != nil {
			return errRet(method, args, ret, "return value must be nil or exceptional")
		}
		if n < 0 {
			return errRet(method, args, ret, "negative length must terminate exceptionally")
		}
		content := s.bufs[id]
		if n <= len(content) {
			s.set(id, content[:n])
		} else {
			pad := make([]byte, n-len(content))
			s.set(id, content+string(pad))
		}
		return nil
	}
	return fmt.Errorf("unknown mutator %q", method)
}

// CheckObserver implements core.Spec.
func (s *StringBuffers) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	id, okid := s.id(args, 0)
	if !okid || len(args) != 1 {
		return false
	}
	switch method {
	case "ToString":
		got, ok := ret.(string)
		return ok && got == s.bufs[id]
	case "Length":
		got, ok := event.Int(ret)
		return ok && got == len(s.bufs[id])
	}
	return false
}
