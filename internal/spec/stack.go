package spec

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// Stack is the executable specification of a LIFO stack of integers: the
// abstract data type implemented by the Treiber stack (internal/tstack).
//
// Methods and return values:
//
//	Push(v) -> nil   mutator; pushes v
//	Pop() -> int     mutator; the popped value, or -1 when empty
//	Top() -> int     observer; the top value, or -1 when empty
//
// Pop carries its own validation (the returned value must be the top at
// the commit), so I/O refinement alone detects a lost-suffix bug the
// moment a Pop returns -1 while the abstract stack is non-empty.
type Stack struct {
	xs    []int
	table *view.Table
}

// spaceS is the view key family of stack slots ("s:<depth>").
var spaceS = view.NewSpace("s")

// NewStack returns an empty stack specification.
func NewStack() *Stack {
	s := &Stack{}
	s.Reset()
	return s
}

// Reset implements core.Spec.
func (s *Stack) Reset() {
	s.xs = s.xs[:0]
	s.table = view.NewTable()
}

// View implements core.Spec. Keys are "s:<depth>" from the bottom; values
// are the stored integers.
func (s *Stack) View() *view.Table { return s.table }

// IsMutator implements core.Spec.
func (s *Stack) IsMutator(method string) bool {
	return method != "Top"
}

// Len returns the number of stored values.
func (s *Stack) Len() int { return len(s.xs) }

// ApplyMutator implements core.Spec.
func (s *Stack) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	switch method {
	case "Push":
		if len(args) != 1 {
			return errRet(method, args, ret, "expected one value")
		}
		v, ok := event.Int(args[0])
		if !ok {
			return errRet(method, args, ret, "non-integer value")
		}
		if ret != nil {
			return errRet(method, args, ret, "Push returns nothing")
		}
		s.table.SetInt(spaceS, int64(len(s.xs)), int64(v))
		s.xs = append(s.xs, v)
		return nil

	case "Pop":
		if len(args) != 0 {
			return errRet(method, args, ret, "expected no arguments")
		}
		got, ok := event.Int(ret)
		if !ok {
			return errRet(method, args, ret, "return value must be int")
		}
		if len(s.xs) == 0 {
			if got != -1 {
				return errRet(method, args, ret, "Pop on an empty stack returns -1")
			}
			return nil
		}
		top := s.xs[len(s.xs)-1]
		if got != top {
			return errRet(method, args, ret, fmt.Sprintf("top of stack is %d", top))
		}
		s.xs = s.xs[:len(s.xs)-1]
		s.table.DeleteInt(spaceS, int64(len(s.xs)))
		return nil

	case MethodCompress:
		return nil
	}
	return fmt.Errorf("unknown mutator %q", method)
}

// CheckObserver implements core.Spec.
func (s *Stack) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	if method != "Top" || len(args) != 0 {
		return false
	}
	got, ok := event.Int(ret)
	if !ok {
		return false
	}
	if len(s.xs) == 0 {
		return got == -1
	}
	return got == s.xs[len(s.xs)-1]
}
