package spec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestFSCreateSemantics(t *testing.T) {
	s := NewFS()
	mustApply(t, s, "Create", []event.Value{"a"}, true)
	if err := s.ApplyMutator("Create", []event.Value{"a"}, true); err == nil {
		t.Fatal("re-creation claimed success")
	}
	mustApply(t, s, "Create", []event.Value{"a"}, false)
	if err := s.ApplyMutator("Create", []event.Value{"b"}, false); err == nil {
		t.Fatal("creation of a fresh name claimed failure")
	}
	if s.Len() != 1 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestFSWriteAndAppend(t *testing.T) {
	s := NewFS()
	mustApply(t, s, "Create", []event.Value{"a"}, true)
	mustApply(t, s, "WriteFile", []event.Value{"a", []byte("abc")}, true)
	if b, _ := s.Get("a"); string(b) != "abc" {
		t.Fatalf("contents %q", b)
	}
	mustApply(t, s, "Append", []event.Value{"a", []byte("def")}, true)
	if b, _ := s.Get("a"); string(b) != "abcdef" {
		t.Fatalf("after append: %q", b)
	}
	// Writes to missing files must claim failure and change nothing.
	mustApply(t, s, "WriteFile", []event.Value{"ghost", []byte("x")}, false)
	mustApply(t, s, "Append", []event.Value{"ghost", []byte("x")}, false)
	if err := s.ApplyMutator("WriteFile", []event.Value{"ghost", []byte("x")}, true); err == nil {
		t.Fatal("write to a missing file claimed success")
	}
	if err := s.ApplyMutator("Append", []event.Value{"a", []byte("x")}, false); err == nil {
		t.Fatal("append to an existing file claimed failure")
	}
}

func TestFSDeleteAndRead(t *testing.T) {
	s := NewFS()
	mustApply(t, s, "Create", []event.Value{"a"}, true)
	mustApply(t, s, "WriteFile", []event.Value{"a", []byte{1, 2}}, true)
	if !s.CheckObserver("ReadFile", []event.Value{"a"}, []byte{1, 2}) {
		t.Fatal("ReadFile rejected the contents")
	}
	if s.CheckObserver("ReadFile", []event.Value{"a"}, []byte{9}) {
		t.Fatal("ReadFile accepted wrong contents")
	}
	mustApply(t, s, "Delete", []event.Value{"a"}, true)
	if !s.CheckObserver("ReadFile", []event.Value{"a"}, nil) {
		t.Fatal("ReadFile of a deleted file must permit nil")
	}
	mustApply(t, s, "Delete", []event.Value{"a"}, false)
	if err := s.ApplyMutator("Delete", []event.Value{"a"}, true); err == nil {
		t.Fatal("delete of a missing file claimed success")
	}
}

func TestFSViewCanonicalForm(t *testing.T) {
	s := NewFS()
	mustApply(t, s, "Create", []event.Value{"x"}, true)
	if v, ok := s.View().Get("f:x"); !ok || v != event.Format([]byte(nil)) {
		t.Fatalf("fresh file view entry: %q %v", v, ok)
	}
	mustApply(t, s, "WriteFile", []event.Value{"x", []byte{0xab}}, true)
	if v, _ := s.View().Get("f:x"); v != "0xab" {
		t.Fatalf("view entry %q", v)
	}
	mustApply(t, s, "Delete", []event.Value{"x"}, true)
	if _, ok := s.View().Get("f:x"); ok {
		t.Fatal("deleted file still in the view")
	}
}

func TestFSMaintenanceNoOp(t *testing.T) {
	s := NewFS()
	mustApply(t, s, "Create", []event.Value{"x"}, true)
	h := s.View().Hash()
	mustApply(t, s, MethodCompress, nil, nil)
	if s.View().Hash() != h {
		t.Fatal("Compress changed the view")
	}
	if err := s.ApplyMutator(MethodCompress, nil, true); err == nil {
		t.Fatal("Compress with a return value accepted")
	}
}

func TestFSRejectsMalformed(t *testing.T) {
	s := NewFS()
	bad := []struct {
		m    string
		args []event.Value
		ret  event.Value
	}{
		{"Create", nil, true},
		{"Create", []event.Value{42}, true},
		{"Create", []event.Value{"a"}, "yes"},
		{"WriteFile", []event.Value{"a"}, true},
		{"WriteFile", []event.Value{"a", "not-bytes"}, true},
		{"Delete", []event.Value{"a"}, nil},
		{"Unknown", nil, nil},
	}
	for _, c := range bad {
		if err := s.ApplyMutator(c.m, c.args, c.ret); err == nil {
			t.Fatalf("accepted %s%v -> %v", c.m, c.args, c.ret)
		}
	}
	if s.CheckObserver("ReadFile", nil, nil) {
		t.Fatal("ReadFile with no name accepted")
	}
	if s.CheckObserver("Nope", []event.Value{"a"}, nil) {
		t.Fatal("unknown observer accepted")
	}
}

// TestQuickFSAgainstModel compares the spec against a map model.
func TestQuickFSAgainstModel(t *testing.T) {
	names := []string{"a", "b", "c"}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewFS()
		model := map[string][]byte{}
		for i := 0; i < int(n); i++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(5) {
			case 0:
				_, exists := model[name]
				if s.ApplyMutator("Create", []event.Value{name}, !exists) != nil {
					return false
				}
				if !exists {
					model[name] = nil
				}
			case 1:
				data := make([]byte, rng.Intn(6))
				rng.Read(data)
				_, exists := model[name]
				if s.ApplyMutator("WriteFile", []event.Value{name, data}, exists) != nil {
					return false
				}
				if exists {
					model[name] = data
				}
			case 2:
				data := make([]byte, rng.Intn(4))
				rng.Read(data)
				old, exists := model[name]
				if s.ApplyMutator("Append", []event.Value{name, data}, exists) != nil {
					return false
				}
				if exists {
					model[name] = append(append([]byte{}, old...), data...)
				}
			case 3:
				_, exists := model[name]
				if s.ApplyMutator("Delete", []event.Value{name}, exists) != nil {
					return false
				}
				delete(model, name)
			case 4:
				want, exists := model[name]
				if exists {
					if !s.CheckObserver("ReadFile", []event.Value{name}, want) {
						return false
					}
				} else if !s.CheckObserver("ReadFile", []event.Value{name}, nil) {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for name, want := range model {
			got, ok := s.Get(name)
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
