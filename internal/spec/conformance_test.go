package spec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// The checker relies on contracts every specification must honor
// (Section 3.2 and the core.Spec documentation):
//
//  1. CheckObserver never modifies the state.
//  2. A rejected ApplyMutator leaves the state unchanged.
//  3. Reset returns to the initial state (same view fingerprint).
//  4. IsMutator is consistent: observers rejected by ApplyMutator,
//     mutators rejected by CheckObserver.
//
// This table drives the same contract checks over every specification in
// the package.

type specCase struct {
	name string
	make func() core.Spec
	// warmup drives the spec into a non-trivial state.
	warmup []call
	// rejected is a mutator application the warmed-up spec must refuse.
	rejected call
	// observer is a valid observation at the warmed-up state.
	observer call
	// mutators/observers name at least one method of each class.
	mutator, observerName string
}

type call struct {
	m    string
	args []event.Value
	ret  event.Value
}

func conformanceCases() []specCase {
	return []specCase{
		{
			name: "Multiset",
			make: func() core.Spec { return NewMultiset() },
			warmup: []call{
				{"Insert", []event.Value{3}, true},
				{"InsertPair", []event.Value{4, 5}, true},
			},
			rejected:     call{"Delete", []event.Value{99}, true},
			observer:     call{"LookUp", []event.Value{3}, true},
			mutator:      "Insert",
			observerName: "LookUp",
		},
		{
			name: "KV",
			make: func() core.Spec { return NewKV() },
			warmup: []call{
				{"Insert", []event.Value{1, 10}, nil},
				{"Insert", []event.Value{2, 20}, nil},
			},
			rejected:     call{"Delete", []event.Value{99}, true},
			observer:     call{"Lookup", []event.Value{1}, 10},
			mutator:      "Insert",
			observerName: "Lookup",
		},
		{
			name: "Vector",
			make: func() core.Spec { return NewVector() },
			warmup: []call{
				{"AddElement", []event.Value{7}, nil},
				{"AddElement", []event.Value{8}, nil},
			},
			rejected:     call{"RemoveElementAt", []event.Value{99}, nil},
			observer:     call{"Size", nil, 2},
			mutator:      "AddElement",
			observerName: "Size",
		},
		{
			name: "StringBuffers",
			make: func() core.Spec { return NewStringBuffers(2) },
			warmup: []call{
				{"Append", []event.Value{0, "ab"}, nil},
				{"Append", []event.Value{1, "cd"}, nil},
			},
			rejected:     call{"Delete", []event.Value{0, 9, 12}, nil},
			observer:     call{"ToString", []event.Value{0}, "ab"},
			mutator:      "Append",
			observerName: "ToString",
		},
		{
			name: "Store",
			make: func() core.Spec { return NewStore() },
			warmup: []call{
				{"Write", []event.Value{1, []byte{1, 2}}, nil},
			},
			rejected:     call{"Write", []event.Value{1, "not-bytes"}, nil},
			observer:     call{"Read", []event.Value{1}, []byte{1, 2}},
			mutator:      "Write",
			observerName: "Read",
		},
		{
			name: "Stack",
			make: func() core.Spec { return NewStack() },
			warmup: []call{
				{"Push", []event.Value{3}, nil},
				{"Push", []event.Value{5}, nil},
			},
			rejected:     call{"Pop", nil, 99},
			observer:     call{"Top", nil, 5},
			mutator:      "Push",
			observerName: "Top",
		},
		{
			name: "Register",
			make: func() core.Spec { return NewRegister() },
			warmup: []call{
				{"Write", []event.Value{7}, nil},
			},
			rejected:     call{"Write", []event.Value{1 << RegisterShift}, nil},
			observer:     call{"Read", nil, 7<<RegisterShift | 7},
			mutator:      "Write",
			observerName: "Read",
		},
		{
			name: "FS",
			make: func() core.Spec { return NewFS() },
			warmup: []call{
				{"Create", []event.Value{"a"}, true},
				{"WriteFile", []event.Value{"a", []byte{9}}, true},
			},
			rejected:     call{"Delete", []event.Value{"ghost"}, true},
			observer:     call{"ReadFile", []event.Value{"a"}, []byte{9}},
			mutator:      "Create",
			observerName: "ReadFile",
		},
	}
}

func warmedUp(t *testing.T, c specCase) core.Spec {
	t.Helper()
	s := c.make()
	for _, w := range c.warmup {
		if err := s.ApplyMutator(w.m, w.args, w.ret); err != nil {
			t.Fatalf("%s warmup %s: %v", c.name, w.m, err)
		}
	}
	return s
}

func TestSpecObserverPurity(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			s := warmedUp(t, c)
			h := s.View().Hash()
			if !s.CheckObserver(c.observer.m, c.observer.args, c.observer.ret) {
				t.Fatalf("valid observation rejected: %+v", c.observer)
			}
			// Invalid observations must not mutate either.
			s.CheckObserver(c.observer.m, c.observer.args, "garbage")
			s.CheckObserver("NoSuchMethod", nil, nil)
			if s.View().Hash() != h {
				t.Fatal("CheckObserver modified the state")
			}
		})
	}
}

func TestSpecRejectedMutatorLeavesStateUnchanged(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			s := warmedUp(t, c)
			h := s.View().Hash()
			if err := s.ApplyMutator(c.rejected.m, c.rejected.args, c.rejected.ret); err == nil {
				t.Fatalf("rejected case accepted: %+v", c.rejected)
			}
			if err := s.ApplyMutator("NoSuchMethod", nil, nil); err == nil {
				t.Fatal("unknown mutator accepted")
			}
			if s.View().Hash() != h {
				t.Fatal("rejected ApplyMutator modified the state")
			}
		})
	}
}

func TestSpecResetRestoresInitialState(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			fresh := c.make()
			initial := fresh.View().Hash()
			s := warmedUp(t, c)
			if s.View().Hash() == initial && len(c.warmup) > 0 {
				t.Fatal("warmup did not change the view; the case is vacuous")
			}
			s.Reset()
			if s.View().Hash() != initial {
				t.Fatal("Reset did not restore the initial view")
			}
		})
	}
}

func TestSpecMethodClassification(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			s := c.make()
			if !s.IsMutator(c.mutator) {
				t.Fatalf("%s not classified as a mutator", c.mutator)
			}
			if s.IsMutator(c.observerName) {
				t.Fatalf("%s not classified as an observer", c.observerName)
			}
			// Driving an observer through ApplyMutator must fail rather than
			// silently succeed (the checker routes by IsMutator, but specs
			// must be defensive).
			if err := s.ApplyMutator(c.observerName, c.observer.args, c.observer.ret); err == nil {
				t.Fatalf("ApplyMutator accepted observer %s", c.observerName)
			}
		})
	}
}

func TestSpecCompressIsUniversallyNeutral(t *testing.T) {
	for _, c := range conformanceCases() {
		t.Run(c.name, func(t *testing.T) {
			s := warmedUp(t, c)
			h := s.View().Hash()
			err := s.ApplyMutator(MethodCompress, nil, nil)
			if s.View().Hash() != h {
				t.Fatal("Compress changed the view")
			}
			if err != nil {
				// Vector and StringBuffers have no maintenance thread, so
				// their specs have no Compress pseudo-method.
				t.Skipf("spec has no maintenance pseudo-method: %v", err)
			}
		})
	}
}
