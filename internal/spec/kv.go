package spec

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// KV is the executable specification of an ordered key-to-data map: the
// abstract data type implemented by the Boxwood B-link tree (Section 7.2.3).
//
// Methods and return values:
//
//	Insert(key, data) -> nil  mutator; sets key to data (inserting or
//	                          overwriting). Like Boxwood's INSERT it returns
//	                          nothing, so I/O refinement can only reject an
//	                          insert through a later observer — which is why
//	                          view refinement detects insert-path bugs much
//	                          earlier (Table 1).
//	Delete(key) -> bool       mutator; true iff key was present
//	Lookup(key) -> int        observer; the data, or -1 when absent
//	Compress() -> nil         mutator pseudo-method; abstract no-op
type KV struct {
	m     map[int]int
	table *view.Table
}

// spaceK is the view key family of stored keys ("k:<key>"), shared by name
// with the tree replayer so spec and replica views land in the same key
// universe.
var spaceK = view.NewSpace("k")

// NewKV returns an empty map specification.
func NewKV() *KV {
	s := &KV{}
	s.Reset()
	return s
}

// Reset implements core.Spec.
func (s *KV) Reset() {
	s.m = make(map[int]int)
	s.table = view.NewTable()
}

// View implements core.Spec. Keys are "k:<key>"; values are the data.
func (s *KV) View() *view.Table { return s.table }

// IsMutator implements core.Spec.
func (s *KV) IsMutator(method string) bool {
	return method != "Lookup"
}

// Len returns the number of keys.
func (s *KV) Len() int { return len(s.m) }

// Get returns the data for key, if present.
func (s *KV) Get(key int) (int, bool) {
	v, ok := s.m[key]
	return v, ok
}

// ApplyMutator implements core.Spec.
func (s *KV) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	switch method {
	case "Insert":
		if len(args) != 2 {
			return errRet(method, args, ret, "expected key and data")
		}
		key, okk := event.Int(args[0])
		data, okd := event.Int(args[1])
		if !okk || !okd {
			return errRet(method, args, ret, "non-integer arguments")
		}
		if ret != nil {
			return errRet(method, args, ret, "Insert returns nothing")
		}
		s.m[key] = data
		s.table.SetInt(spaceK, int64(key), int64(data))
		return nil

	case "Delete":
		if len(args) != 1 {
			return errRet(method, args, ret, "expected one key")
		}
		key, ok := event.Int(args[0])
		if !ok {
			return errRet(method, args, ret, "non-integer key")
		}
		removed, ok := ret.(bool)
		if !ok {
			return errRet(method, args, ret, "return value must be bool")
		}
		_, present := s.m[key]
		if removed != present {
			return errRet(method, args, ret, "removal claim inconsistent with the witness interleaving")
		}
		if removed {
			delete(s.m, key)
			s.table.DeleteInt(spaceK, int64(key))
		}
		return nil

	case MethodCompress:
		return nil
	}
	return fmt.Errorf("unknown mutator %q", method)
}

// CheckObserver implements core.Spec.
func (s *KV) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	if method != "Lookup" || len(args) != 1 {
		return false
	}
	key, ok := event.Int(args[0])
	if !ok {
		return false
	}
	got, ok := event.Int(ret)
	if !ok {
		return false
	}
	if data, present := s.m[key]; present {
		return got == data
	}
	return got == -1
}
