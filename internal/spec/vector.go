package spec

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// Vector is the executable specification of the java.util.Vector subset the
// paper checks (Section 7.4.1): a growable sequence of integers.
//
// Methods and return values:
//
//	AddElement(x) -> nil          mutator; appends
//	InsertElementAt(x, i) -> nil | Exceptional   mutator; exceptional iff i > size
//	RemoveElementAt(i) -> nil | Exceptional      mutator; exceptional iff i >= size
//	RemoveAllElements() -> nil    mutator; clears
//	TrimToSize() -> nil           mutator; abstract no-op (storage compaction)
//	Size() -> int                 observer
//	ElementAt(i) -> int | Exceptional            observer; exceptional iff i >= size
//	LastIndexOf(x) -> int         observer; last index of x, -1 when absent.
//	                              An exceptional termination is NOT permitted:
//	                              this is exactly how the paper's known
//	                              "taking length non-atomically" bug manifests.
type Vector struct {
	elems []int
	table *view.Table
}

// NewVector returns an empty vector specification.
func NewVector() *Vector {
	s := &Vector{}
	s.Reset()
	return s
}

// Reset implements core.Spec.
func (s *Vector) Reset() {
	s.elems = nil
	s.table = view.NewTable()
	s.table.Set("len", "0")
}

// View implements core.Spec. Keys are "len" and "i:<index>".
func (s *Vector) View() *view.Table { return s.table }

// IsMutator implements core.Spec.
func (s *Vector) IsMutator(method string) bool {
	switch method {
	case "Size", "ElementAt", "LastIndexOf":
		return false
	}
	return true
}

// Len returns the current length.
func (s *Vector) Len() int { return len(s.elems) }

func (s *Vector) setIndex(i int) {
	s.table.Set("i:"+itoa(i), itoa(s.elems[i]))
}

func (s *Vector) refreshFrom(i int) {
	for ; i < len(s.elems); i++ {
		s.setIndex(i)
	}
	s.table.Set("len", itoa(len(s.elems)))
}

func (s *Vector) truncateTable(oldLen int) {
	for i := len(s.elems); i < oldLen; i++ {
		s.table.Delete("i:" + itoa(i))
	}
	s.table.Set("len", itoa(len(s.elems)))
}

// ApplyMutator implements core.Spec.
func (s *Vector) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	switch method {
	case "AddElement":
		if len(args) != 1 {
			return errRet(method, args, ret, "expected one element")
		}
		x, ok := event.Int(args[0])
		if !ok {
			return errRet(method, args, ret, "non-integer element")
		}
		if ret != nil {
			return errRet(method, args, ret, "AddElement returns nothing")
		}
		s.elems = append(s.elems, x)
		s.setIndex(len(s.elems) - 1)
		s.table.Set("len", itoa(len(s.elems)))
		return nil

	case "InsertElementAt":
		if len(args) != 2 {
			return errRet(method, args, ret, "expected element and index")
		}
		x, okx := event.Int(args[0])
		i, oki := event.Int(args[1])
		if !okx || !oki {
			return errRet(method, args, ret, "non-integer arguments")
		}
		outOfRange := i < 0 || i > len(s.elems)
		if event.IsExceptional(ret) {
			if !outOfRange {
				return errRet(method, args, ret, "exceptional termination but the index is in range in the witness interleaving")
			}
			return nil
		}
		if ret != nil {
			return errRet(method, args, ret, "return value must be nil or exceptional")
		}
		if outOfRange {
			return errRet(method, args, ret, "index out of range in the witness interleaving")
		}
		s.elems = append(s.elems, 0)
		copy(s.elems[i+1:], s.elems[i:])
		s.elems[i] = x
		s.refreshFrom(i)
		return nil

	case "RemoveElementAt":
		if len(args) != 1 {
			return errRet(method, args, ret, "expected one index")
		}
		i, ok := event.Int(args[0])
		if !ok {
			return errRet(method, args, ret, "non-integer index")
		}
		outOfRange := i < 0 || i >= len(s.elems)
		if event.IsExceptional(ret) {
			if !outOfRange {
				return errRet(method, args, ret, "exceptional termination but the index is in range in the witness interleaving")
			}
			return nil
		}
		if ret != nil {
			return errRet(method, args, ret, "return value must be nil or exceptional")
		}
		if outOfRange {
			return errRet(method, args, ret, "index out of range in the witness interleaving")
		}
		oldLen := len(s.elems)
		s.elems = append(s.elems[:i], s.elems[i+1:]...)
		s.refreshFrom(i)
		s.truncateTable(oldLen)
		return nil

	case "RemoveAllElements":
		if ret != nil {
			return errRet(method, args, ret, "RemoveAllElements returns nothing")
		}
		oldLen := len(s.elems)
		s.elems = s.elems[:0]
		s.truncateTable(oldLen)
		return nil

	case "TrimToSize":
		if ret != nil {
			return errRet(method, args, ret, "TrimToSize returns nothing")
		}
		return nil
	}
	return fmt.Errorf("unknown mutator %q", method)
}

// CheckObserver implements core.Spec.
func (s *Vector) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	switch method {
	case "Size":
		got, ok := event.Int(ret)
		return ok && got == len(s.elems)

	case "ElementAt":
		if len(args) != 1 {
			return false
		}
		i, ok := event.Int(args[0])
		if !ok {
			return false
		}
		if i < 0 || i >= len(s.elems) {
			return event.IsExceptional(ret)
		}
		got, ok := event.Int(ret)
		return ok && got == s.elems[i]

	case "LastIndexOf":
		if len(args) != 1 {
			return false
		}
		x, ok := event.Int(args[0])
		if !ok {
			return false
		}
		got, ok := event.Int(ret)
		if !ok {
			return false // exceptional termination is never permitted
		}
		want := -1
		for i := len(s.elems) - 1; i >= 0; i-- {
			if s.elems[i] == x {
				want = i
				break
			}
		}
		return got == want
	}
	return false
}
