package spec

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// FS is the executable specification of a file system's data path: a map
// from file names to byte contents (the abstraction the Scan file system of
// Section 7.3 provides to applications). Directory structure, inodes, block
// layout and caching are all implementation detail abstracted away by the
// view.
//
// Methods and return values:
//
//	Create(name) -> bool          mutator; true iff the name was fresh
//	WriteFile(name, bytes) -> bool mutator; true iff the file exists
//	                              (replaces the contents)
//	Append(name, bytes) -> bool   mutator; true iff the file exists
//	Delete(name) -> bool          mutator; true iff the file existed
//	ReadFile(name) -> bytes | nil observer; nil when absent
//	Compress() -> nil             mutator pseudo-method (flush / scan /
//	                              defragmentation daemons); abstract no-op
type FS struct {
	files map[string][]byte
	table *view.Table
}

// NewFS returns an empty file system specification.
func NewFS() *FS {
	s := &FS{}
	s.Reset()
	return s
}

// Reset implements core.Spec.
func (s *FS) Reset() {
	s.files = make(map[string][]byte)
	s.table = view.NewTable()
}

// View implements core.Spec. Keys are "f:<name>"; values are the contents.
func (s *FS) View() *view.Table { return s.table }

// IsMutator implements core.Spec.
func (s *FS) IsMutator(method string) bool {
	return method != "ReadFile"
}

// Len returns the number of files.
func (s *FS) Len() int { return len(s.files) }

// Get returns a file's contents.
func (s *FS) Get(name string) ([]byte, bool) {
	b, ok := s.files[name]
	return b, ok
}

func (s *FS) set(name string, content []byte) {
	s.files[name] = content
	s.table.Set("f:"+name, event.Format(content))
}

// ApplyMutator implements core.Spec.
func (s *FS) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	name, nameOK := "", false
	if len(args) > 0 {
		name, nameOK = args[0].(string)
	}
	switch method {
	case "Create":
		if !nameOK || len(args) != 1 {
			return errRet(method, args, ret, "expected a file name")
		}
		created, ok := ret.(bool)
		if !ok {
			return errRet(method, args, ret, "return value must be bool")
		}
		_, exists := s.files[name]
		if created == exists {
			return errRet(method, args, ret, "creation claim inconsistent with the witness interleaving")
		}
		if created {
			s.set(name, nil)
		}
		return nil

	case "WriteFile", "Append":
		if !nameOK || len(args) != 2 {
			return errRet(method, args, ret, "expected a file name and bytes")
		}
		data, ok := event.Bytes(args[1])
		if !ok {
			return errRet(method, args, ret, "second argument must be bytes")
		}
		okRet, ok := ret.(bool)
		if !ok {
			return errRet(method, args, ret, "return value must be bool")
		}
		old, exists := s.files[name]
		if okRet != exists {
			return errRet(method, args, ret, "existence claim inconsistent with the witness interleaving")
		}
		if !okRet {
			return nil
		}
		if method == "WriteFile" {
			s.set(name, data)
		} else {
			combined := make([]byte, 0, len(old)+len(data))
			combined = append(combined, old...)
			combined = append(combined, data...)
			s.set(name, combined)
		}
		return nil

	case "Delete":
		if !nameOK || len(args) != 1 {
			return errRet(method, args, ret, "expected a file name")
		}
		removed, ok := ret.(bool)
		if !ok {
			return errRet(method, args, ret, "return value must be bool")
		}
		_, exists := s.files[name]
		if removed != exists {
			return errRet(method, args, ret, "removal claim inconsistent with the witness interleaving")
		}
		if removed {
			delete(s.files, name)
			s.table.Delete("f:" + name)
		}
		return nil

	case MethodCompress:
		if ret != nil {
			return errRet(method, args, ret, "Compress returns nothing")
		}
		return nil
	}
	return fmt.Errorf("unknown mutator %q", method)
}

// CheckObserver implements core.Spec.
func (s *FS) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	if method != "ReadFile" || len(args) != 1 {
		return false
	}
	name, ok := args[0].(string)
	if !ok {
		return false
	}
	want, exists := s.files[name]
	if !exists {
		return ret == nil
	}
	got, ok := event.Bytes(ret)
	return ok && string(got) == string(want)
}
