package spec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestKVInsertSetsAndOverwrites(t *testing.T) {
	s := NewKV()
	mustApply(t, s, "Insert", []event.Value{1, 10}, nil)
	if v, ok := s.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	mustApply(t, s, "Insert", []event.Value{1, 20}, nil)
	if v, _ := s.Get(1); v != 20 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestKVInsertRejectsReturnValue(t *testing.T) {
	s := NewKV()
	if err := s.ApplyMutator("Insert", []event.Value{1, 10}, true); err == nil {
		t.Fatal("Insert with a non-nil return value accepted")
	}
}

func TestKVDeleteConsistency(t *testing.T) {
	s := NewKV()
	if err := s.ApplyMutator("Delete", []event.Value{5}, true); err == nil {
		t.Fatal("Delete(absent) -> true accepted")
	}
	mustApply(t, s, "Delete", []event.Value{5}, false)
	mustApply(t, s, "Insert", []event.Value{5, 50}, nil)
	if err := s.ApplyMutator("Delete", []event.Value{5}, false); err == nil {
		t.Fatal("Delete(present) -> false accepted: directed descent cannot miss")
	}
	mustApply(t, s, "Delete", []event.Value{5}, true)
	if _, ok := s.Get(5); ok {
		t.Fatal("delete did not remove")
	}
}

func TestKVLookupObserver(t *testing.T) {
	s := NewKV()
	if !s.CheckObserver("Lookup", []event.Value{7}, -1) {
		t.Fatal("Lookup(absent) -> -1 rejected")
	}
	if s.CheckObserver("Lookup", []event.Value{7}, 0) {
		t.Fatal("Lookup(absent) -> 0 accepted")
	}
	mustApply(t, s, "Insert", []event.Value{7, 70}, nil)
	if !s.CheckObserver("Lookup", []event.Value{7}, 70) {
		t.Fatal("Lookup(present) rejected the stored data")
	}
	if s.CheckObserver("Lookup", []event.Value{7}, 71) {
		t.Fatal("Lookup accepted wrong data")
	}
	if s.CheckObserver("Lookup", []event.Value{7}, "70") {
		t.Fatal("Lookup accepted a non-integer return")
	}
}

func TestKVViewMatchesContents(t *testing.T) {
	s := NewKV()
	mustApply(t, s, "Insert", []event.Value{1, 10}, nil)
	mustApply(t, s, "Insert", []event.Value{2, 20}, nil)
	mustApply(t, s, "Delete", []event.Value{1}, true)
	if v, ok := s.View().GetInt(spaceK, 2); !ok || v != 20 {
		t.Fatalf("view entry k:2 = %d, %v", v, ok)
	}
	if _, ok := s.View().GetInt(spaceK, 1); ok {
		t.Fatal("deleted key still in the view")
	}
}

func TestKVCompressNoOp(t *testing.T) {
	s := NewKV()
	mustApply(t, s, "Insert", []event.Value{1, 10}, nil)
	h := s.View().Hash()
	mustApply(t, s, MethodCompress, nil, nil)
	if s.View().Hash() != h {
		t.Fatal("Compress changed the view")
	}
}

func TestKVRejectsMalformed(t *testing.T) {
	s := NewKV()
	bad := []struct {
		m    string
		args []event.Value
		ret  event.Value
	}{
		{"Insert", []event.Value{1}, nil},
		{"Insert", []event.Value{"k", 1}, nil},
		{"Delete", nil, true},
		{"Delete", []event.Value{1}, 1},
		{"Unknown", nil, nil},
	}
	for _, c := range bad {
		if err := s.ApplyMutator(c.m, c.args, c.ret); err == nil {
			t.Fatalf("accepted %s%v -> %v", c.m, c.args, c.ret)
		}
	}
}

// TestQuickKVAgainstModel compares the spec against a map model under
// random valid operation sequences, checking view fingerprints track.
func TestQuickKVAgainstModel(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewKV()
		model := map[int]int{}
		for i := 0; i < int(n); i++ {
			k := rng.Intn(10)
			switch rng.Intn(3) {
			case 0:
				d := rng.Intn(100)
				if s.ApplyMutator("Insert", []event.Value{k, d}, nil) != nil {
					return false
				}
				model[k] = d
			case 1:
				_, present := model[k]
				if s.ApplyMutator("Delete", []event.Value{k}, present) != nil {
					return false
				}
				delete(model, k)
			case 2:
				want := -1
				if d, ok := model[k]; ok {
					want = d
				}
				if !s.CheckObserver("Lookup", []event.Value{k}, want) {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for k, d := range model {
			if got, ok := s.Get(k); !ok || got != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
