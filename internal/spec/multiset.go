package spec

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// Multiset is the executable specification of the paper's running example
// (Section 2): a multiset of integers with Insert, InsertPair, Delete and
// LookUp. Insert and InsertPair are allowed to terminate unsuccessfully
// under contention, in which case the multiset state must be unchanged;
// InsertPair must insert both elements or neither.
//
// Methods and return values:
//
//	Insert(x) -> bool        mutator; true adds one copy of x
//	InsertPair(x, y) -> bool mutator; true adds one copy of each of x and y
//	Delete(x) -> bool        mutator; true removes one copy (requires presence);
//	                         false (not found) is always permitted
//	LookUp(x) -> bool        observer; membership
//	Compress() -> nil        mutator pseudo-method; abstract no-op
type Multiset struct {
	counts map[int]int
	table  *view.Table
}

// spaceE is the view key family of multiset elements ("e:<element>"),
// shared by name with the multiset replayer.
var spaceE = view.NewSpace("e")

// NewMultiset returns an empty multiset specification.
func NewMultiset() *Multiset {
	s := &Multiset{}
	s.Reset()
	return s
}

// Reset implements core.Spec.
func (s *Multiset) Reset() {
	s.counts = make(map[int]int)
	s.table = view.NewTable()
}

// View implements core.Spec. Keys are "e:<element>"; values are
// multiplicities.
func (s *Multiset) View() *view.Table { return s.table }

// IsMutator implements core.Spec.
func (s *Multiset) IsMutator(method string) bool {
	switch method {
	case "Insert", "InsertPair", "Delete", MethodCompress:
		return true
	case "LookUp":
		return false
	}
	// Unknown methods are treated as mutators so that they reach
	// ApplyMutator and are rejected there with a useful message.
	return true
}

func (s *Multiset) add(x, delta int) {
	n := s.counts[x] + delta
	if n <= 0 {
		delete(s.counts, x)
		s.table.DeleteInt(spaceE, int64(x))
		return
	}
	s.counts[x] = n
	s.table.SetInt(spaceE, int64(x), int64(n))
}

// Count returns the multiplicity of x.
func (s *Multiset) Count(x int) int { return s.counts[x] }

// Size returns the total number of elements (with multiplicity).
func (s *Multiset) Size() int {
	n := 0
	for _, c := range s.counts {
		n += c
	}
	return n
}

// ApplyMutator implements core.Spec.
func (s *Multiset) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	switch method {
	case "Insert":
		if len(args) != 1 {
			return errRet(method, args, ret, "expected one argument")
		}
		x, ok := event.Int(args[0])
		if !ok {
			return errRet(method, args, ret, "non-integer argument")
		}
		success, ok := retSuccess(ret)
		if !ok {
			return errRet(method, args, ret, "return value must be bool or exceptional")
		}
		if success {
			s.add(x, 1)
		}
		return nil

	case "InsertPair":
		if len(args) != 2 {
			return errRet(method, args, ret, "expected two arguments")
		}
		x, okx := event.Int(args[0])
		y, oky := event.Int(args[1])
		if !okx || !oky {
			return errRet(method, args, ret, "non-integer arguments")
		}
		success, ok := retSuccess(ret)
		if !ok {
			return errRet(method, args, ret, "return value must be bool or exceptional")
		}
		if success {
			s.add(x, 1)
			s.add(y, 1)
		}
		return nil

	case "Delete":
		if len(args) != 1 {
			return errRet(method, args, ret, "expected one argument")
		}
		x, ok := event.Int(args[0])
		if !ok {
			return errRet(method, args, ret, "non-integer argument")
		}
		removed, ok := ret.(bool)
		if !ok {
			return errRet(method, args, ret, "return value must be bool")
		}
		// Delete(x) -> true requires x to be present. Delete(x) -> false is
		// always permitted: a scan-based implementation may correctly miss
		// an element inserted behind its scan front, and the specification
		// deliberately models that contention outcome (Section 1 of the
		// paper: refinement admits specifications permissive enough for
		// concurrent executions where atomicity is too stringent).
		if removed {
			if s.counts[x] == 0 {
				return errRet(method, args, ret, "claims removal but element is absent in the witness interleaving")
			}
			s.add(x, -1)
		}
		return nil

	case MethodCompress:
		return nil
	}
	return fmt.Errorf("unknown mutator %q", method)
}

// CheckObserver implements core.Spec.
func (s *Multiset) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	if method != "LookUp" || len(args) != 1 {
		return false
	}
	x, ok := event.Int(args[0])
	if !ok {
		return false
	}
	found, ok := ret.(bool)
	if !ok {
		return false
	}
	return found == (s.counts[x] > 0)
}
