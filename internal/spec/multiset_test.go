package spec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestMultisetInsertSuccess(t *testing.T) {
	s := NewMultiset()
	if err := s.ApplyMutator("Insert", []event.Value{3}, true); err != nil {
		t.Fatal(err)
	}
	if s.Count(3) != 1 || s.Size() != 1 {
		t.Fatalf("count %d size %d", s.Count(3), s.Size())
	}
	if !s.CheckObserver("LookUp", []event.Value{3}, true) {
		t.Fatal("LookUp(3) -> true rejected")
	}
	if s.CheckObserver("LookUp", []event.Value{3}, false) {
		t.Fatal("LookUp(3) -> false accepted while present")
	}
}

func TestMultisetInsertFailureLeavesStateUnchanged(t *testing.T) {
	s := NewMultiset()
	h := s.View().Hash()
	if err := s.ApplyMutator("Insert", []event.Value{3}, false); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyMutator("Insert", []event.Value{3}, event.Exceptional{Reason: "contention"}); err != nil {
		t.Fatal(err)
	}
	if s.View().Hash() != h || s.Count(3) != 0 {
		t.Fatal("failed insert changed the state")
	}
}

func TestMultisetInsertPairBothOrNeither(t *testing.T) {
	s := NewMultiset()
	if err := s.ApplyMutator("InsertPair", []event.Value{1, 2}, true); err != nil {
		t.Fatal(err)
	}
	if s.Count(1) != 1 || s.Count(2) != 1 {
		t.Fatal("pair insert did not add both")
	}
	if err := s.ApplyMutator("InsertPair", []event.Value{5, 6}, false); err != nil {
		t.Fatal(err)
	}
	if s.Count(5) != 0 || s.Count(6) != 0 {
		t.Fatal("failed pair insert changed the state")
	}
	// Same element twice.
	if err := s.ApplyMutator("InsertPair", []event.Value{7, 7}, true); err != nil {
		t.Fatal(err)
	}
	if s.Count(7) != 2 {
		t.Fatalf("InsertPair(7,7) count = %d", s.Count(7))
	}
}

func TestMultisetDeleteSemantics(t *testing.T) {
	s := NewMultiset()
	// Delete(x) -> true requires presence.
	if err := s.ApplyMutator("Delete", []event.Value{9}, true); err == nil {
		t.Fatal("Delete of absent element accepted")
	}
	// Delete(x) -> false is always permitted (scan misses are legal).
	if err := s.ApplyMutator("Delete", []event.Value{9}, false); err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, "Insert", []event.Value{9}, true)
	if err := s.ApplyMutator("Delete", []event.Value{9}, false); err != nil {
		t.Fatal("Delete(present) -> false must be permitted")
	}
	if s.Count(9) != 1 {
		t.Fatal("permitted not-found delete changed the state")
	}
	if err := s.ApplyMutator("Delete", []event.Value{9}, true); err != nil {
		t.Fatal(err)
	}
	if s.Count(9) != 0 {
		t.Fatal("delete did not remove")
	}
}

func TestMultisetMultiplicity(t *testing.T) {
	s := NewMultiset()
	for i := 0; i < 3; i++ {
		mustApply(t, s, "Insert", []event.Value{4}, true)
	}
	if s.Count(4) != 3 {
		t.Fatalf("count = %d", s.Count(4))
	}
	mustApply(t, s, "Delete", []event.Value{4}, true)
	if s.Count(4) != 2 || !s.CheckObserver("LookUp", []event.Value{4}, true) {
		t.Fatal("multiplicity bookkeeping broken")
	}
}

func TestMultisetCompressIsNoOp(t *testing.T) {
	s := NewMultiset()
	mustApply(t, s, "Insert", []event.Value{1}, true)
	h := s.View().Hash()
	if err := s.ApplyMutator(MethodCompress, nil, nil); err != nil {
		t.Fatal(err)
	}
	if s.View().Hash() != h {
		t.Fatal("Compress changed the abstract state")
	}
}

func TestMultisetRejectsMalformed(t *testing.T) {
	s := NewMultiset()
	cases := []struct {
		m    string
		args []event.Value
		ret  event.Value
	}{
		{"Insert", nil, true},                         // missing arg
		{"Insert", []event.Value{"x"}, true},          // non-integer
		{"Insert", []event.Value{1}, "yes"},           // non-bool ret
		{"InsertPair", []event.Value{1}, true},        // missing arg
		{"Delete", []event.Value{1, 2}, true},         // extra arg
		{"Delete", []event.Value{1}, nil},             // non-bool ret
		{"Frobnicate", []event.Value{1}, nil},         // unknown method
		{"InsertPair", []event.Value{1, "b"}, true},   // non-integer
		{"InsertPair", []event.Value{1, 2}, int64(3)}, // non-bool ret
	}
	for _, c := range cases {
		if err := s.ApplyMutator(c.m, c.args, c.ret); err == nil {
			t.Fatalf("ApplyMutator(%s, %v, %v) accepted", c.m, c.args, c.ret)
		}
	}
	if s.CheckObserver("LookUp", nil, true) {
		t.Fatal("observer check accepted missing args")
	}
	if s.CheckObserver("LookUp", []event.Value{1}, "yes") {
		t.Fatal("observer check accepted a non-bool return")
	}
	if s.CheckObserver("Nope", []event.Value{1}, true) {
		t.Fatal("observer check accepted an unknown method")
	}
}

func TestMultisetIsMutatorClassification(t *testing.T) {
	s := NewMultiset()
	for _, m := range []string{"Insert", "InsertPair", "Delete", MethodCompress} {
		if !s.IsMutator(m) {
			t.Fatalf("%s should be a mutator", m)
		}
	}
	if s.IsMutator("LookUp") {
		t.Fatal("LookUp should be an observer")
	}
}

func TestMultisetReset(t *testing.T) {
	s := NewMultiset()
	mustApply(t, s, "Insert", []event.Value{1}, true)
	s.Reset()
	if s.Size() != 0 || s.View().Hash() != 0 {
		t.Fatal("reset did not clear")
	}
}

// TestQuickMultisetAgainstModel drives the spec with random valid
// operations and compares against a plain map model, including the view
// table contents.
func TestQuickMultisetAgainstModel(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewMultiset()
		model := map[int]int{}
		for i := 0; i < int(n); i++ {
			x := rng.Intn(8)
			switch rng.Intn(4) {
			case 0:
				if s.ApplyMutator("Insert", []event.Value{x}, true) != nil {
					return false
				}
				model[x]++
			case 1:
				y := rng.Intn(8)
				if s.ApplyMutator("InsertPair", []event.Value{x, y}, true) != nil {
					return false
				}
				model[x]++
				model[y]++
			case 2:
				present := model[x] > 0
				if err := s.ApplyMutator("Delete", []event.Value{x}, present); err != nil {
					return false
				}
				if present {
					model[x]--
				}
			case 3:
				if !s.CheckObserver("LookUp", []event.Value{x}, model[x] > 0) {
					return false
				}
			}
		}
		for x, c := range model {
			if s.Count(x) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustApply(t *testing.T, s interface {
	ApplyMutator(string, []event.Value, event.Value) error
}, m string, args []event.Value, ret event.Value) {
	t.Helper()
	if err := s.ApplyMutator(m, args, ret); err != nil {
		t.Fatalf("%s%v -> %v: %v", m, args, ret, err)
	}
}
