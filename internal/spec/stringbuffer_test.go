package spec

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func TestStringBuffersAppend(t *testing.T) {
	s := NewStringBuffers(2)
	mustApply(t, s, "Append", []event.Value{0, "hello"}, nil)
	mustApply(t, s, "Append", []event.Value{0, " world"}, nil)
	if s.Content(0) != "hello world" {
		t.Fatalf("content = %q", s.Content(0))
	}
	if !s.CheckObserver("ToString", []event.Value{0}, "hello world") {
		t.Fatal("ToString rejected the contents")
	}
	if !s.CheckObserver("Length", []event.Value{0}, 11) {
		t.Fatal("Length rejected")
	}
	if s.CheckObserver("Length", []event.Value{1}, 11) {
		t.Fatal("Length of the other buffer accepted")
	}
}

func TestStringBuffersAppendBuffer(t *testing.T) {
	s := NewStringBuffers(3)
	mustApply(t, s, "Append", []event.Value{1, "abc"}, nil)
	mustApply(t, s, "AppendBuffer", []event.Value{0, 1}, nil)
	if s.Content(0) != "abc" {
		t.Fatalf("content = %q", s.Content(0))
	}
	// Self-append doubles.
	mustApply(t, s, "AppendBuffer", []event.Value{1, 1}, nil)
	if s.Content(1) != "abcabc" {
		t.Fatalf("self-append = %q", s.Content(1))
	}
	// Exceptional termination is never permitted for AppendBuffer — that is
	// how the known bug surfaces (Section 7.4.1).
	if err := s.ApplyMutator("AppendBuffer", []event.Value{0, 1}, event.Exceptional{Reason: "AIOOBE"}); err == nil {
		t.Fatal("exceptional AppendBuffer accepted")
	}
}

func TestStringBuffersDelete(t *testing.T) {
	s := NewStringBuffers(1)
	mustApply(t, s, "Append", []event.Value{0, "abcdef"}, nil)
	mustApply(t, s, "Delete", []event.Value{0, 1, 3}, nil)
	if s.Content(0) != "adef" {
		t.Fatalf("after delete: %q", s.Content(0))
	}
	// End beyond length clips (java semantics).
	mustApply(t, s, "Delete", []event.Value{0, 2, 99}, nil)
	if s.Content(0) != "ad" {
		t.Fatalf("after clipped delete: %q", s.Content(0))
	}
	// Invalid ranges must terminate exceptionally.
	mustApply(t, s, "Delete", []event.Value{0, 5, 9}, event.Exceptional{Reason: "x"})
	mustApply(t, s, "Delete", []event.Value{0, -1, 1}, event.Exceptional{Reason: "x"})
	mustApply(t, s, "Delete", []event.Value{0, 2, 1}, event.Exceptional{Reason: "x"})
	if err := s.ApplyMutator("Delete", []event.Value{0, 5, 9}, nil); err == nil {
		t.Fatal("invalid range accepted as a normal return")
	}
	if err := s.ApplyMutator("Delete", []event.Value{0, 0, 1}, event.Exceptional{Reason: "x"}); err == nil {
		t.Fatal("exceptional termination of a valid delete accepted")
	}
}

func TestStringBuffersSetLength(t *testing.T) {
	s := NewStringBuffers(1)
	mustApply(t, s, "Append", []event.Value{0, "abc"}, nil)
	mustApply(t, s, "SetLength", []event.Value{0, 5}, nil)
	if s.Content(0) != "abc\x00\x00" {
		t.Fatalf("zero-extension: %q", s.Content(0))
	}
	mustApply(t, s, "SetLength", []event.Value{0, 2}, nil)
	if s.Content(0) != "ab" {
		t.Fatalf("truncation: %q", s.Content(0))
	}
	mustApply(t, s, "SetLength", []event.Value{0, -1}, event.Exceptional{Reason: "x"})
	if err := s.ApplyMutator("SetLength", []event.Value{0, -1}, nil); err == nil {
		t.Fatal("negative length accepted as a normal return")
	}
}

func TestStringBuffersViewCanonicalForm(t *testing.T) {
	s := NewStringBuffers(2)
	if _, ok := s.View().Get("sb:0"); !ok {
		t.Fatal("view lacks the empty buffer entries")
	}
	mustApply(t, s, "Append", []event.Value{1, "zz"}, nil)
	if v, _ := s.View().Get("sb:1"); v != "zz" {
		t.Fatalf("view sb:1 = %q", v)
	}
}

func TestStringBuffersRejectsBadIDs(t *testing.T) {
	s := NewStringBuffers(2)
	if err := s.ApplyMutator("Append", []event.Value{5, "x"}, nil); err == nil {
		t.Fatal("out-of-range buffer id accepted")
	}
	if err := s.ApplyMutator("AppendBuffer", []event.Value{0, 9}, nil); err == nil {
		t.Fatal("out-of-range source id accepted")
	}
	if s.CheckObserver("ToString", []event.Value{9}, "") {
		t.Fatal("observer accepted an out-of-range id")
	}
}

// TestQuickStringBuffersAgainstModel compares against a []string model.
func TestQuickStringBuffersAgainstModel(t *testing.T) {
	const nb = 3
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStringBuffers(nb)
		model := make([]string, nb)
		for i := 0; i < int(n); i++ {
			id := rng.Intn(nb)
			switch rng.Intn(5) {
			case 0:
				str := strconv.Itoa(rng.Intn(1000))
				if s.ApplyMutator("Append", []event.Value{id, str}, nil) != nil {
					return false
				}
				model[id] += str
			case 1:
				src := rng.Intn(nb)
				if len(model[id])+len(model[src]) > 4096 {
					continue
				}
				if s.ApplyMutator("AppendBuffer", []event.Value{id, src}, nil) != nil {
					return false
				}
				model[id] += model[src]
			case 2:
				nl := rng.Intn(20)
				if s.ApplyMutator("SetLength", []event.Value{id, nl}, nil) != nil {
					return false
				}
				if nl <= len(model[id]) {
					model[id] = model[id][:nl]
				} else {
					model[id] += strings.Repeat("\x00", nl-len(model[id]))
				}
			case 3:
				if len(model[id]) == 0 {
					continue
				}
				start := rng.Intn(len(model[id]))
				end := start + rng.Intn(len(model[id])-start+3)
				if s.ApplyMutator("Delete", []event.Value{id, start, end}, nil) != nil {
					return false
				}
				e := end
				if e > len(model[id]) {
					e = len(model[id])
				}
				model[id] = model[id][:start] + model[id][e:]
			case 4:
				if !s.CheckObserver("ToString", []event.Value{id}, model[id]) {
					return false
				}
			}
		}
		for id := 0; id < nb; id++ {
			if s.Content(id) != model[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
