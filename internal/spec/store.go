package spec

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// Store is the executable specification of the abstract data store provided
// by the Boxwood Cache + Chunk Manager combination (Section 7.2.1): a map
// from handles to byte arrays. Writing through the cache, flushing dirty
// entries, revoking entries and reclaiming clean entries are all either
// abstract assignments or abstract no-ops.
//
// Methods and return values:
//
//	Write(handle, bytes) -> nil   mutator; store[handle] = bytes
//	Read(handle) -> bytes | nil   observer; nil when the handle is unwritten
//	Flush() -> nil                mutator; abstract no-op
//	Revoke(handle) -> nil         mutator; abstract no-op (single-entry flush)
//	Compress() -> nil             mutator pseudo-method (reclaim daemon);
//	                              abstract no-op
type Store struct {
	m     map[int][]byte
	table *view.Table
}

// spaceH is the view key family of written handles ("h:<handle>"), shared
// by name with the cache replayer so spec and replica views land in the
// same key universe.
var spaceH = view.NewSpace("h")

// NewStore returns an empty store specification.
func NewStore() *Store {
	s := &Store{}
	s.Reset()
	return s
}

// Reset implements core.Spec.
func (s *Store) Reset() {
	s.m = make(map[int][]byte)
	s.table = view.NewTable()
}

// View implements core.Spec. Keys are "h:<handle>"; values are the bytes,
// hex-encoded by event.Format.
func (s *Store) View() *view.Table { return s.table }

// IsMutator implements core.Spec.
func (s *Store) IsMutator(method string) bool {
	return method != "Read"
}

// Get returns the stored bytes for a handle.
func (s *Store) Get(handle int) ([]byte, bool) {
	b, ok := s.m[handle]
	return b, ok
}

// Len returns the number of written handles.
func (s *Store) Len() int { return len(s.m) }

// ApplyMutator implements core.Spec.
func (s *Store) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	switch method {
	case "Write":
		if len(args) != 2 {
			return errRet(method, args, ret, "expected handle and bytes")
		}
		h, ok := event.Int(args[0])
		if !ok {
			return errRet(method, args, ret, "non-integer handle")
		}
		buf, ok := event.Bytes(args[1])
		if !ok {
			return errRet(method, args, ret, "second argument must be bytes")
		}
		if ret != nil {
			return errRet(method, args, ret, "Write returns nothing")
		}
		s.m[h] = buf
		s.table.SetIntBytes(spaceH, int64(h), buf)
		return nil

	case "Flush", "Revoke", MethodCompress:
		if ret != nil {
			return errRet(method, args, ret, method+" returns nothing")
		}
		return nil
	}
	return fmt.Errorf("unknown mutator %q", method)
}

// CheckObserver implements core.Spec.
func (s *Store) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	if method != "Read" || len(args) != 1 {
		return false
	}
	h, ok := event.Int(args[0])
	if !ok {
		return false
	}
	want, present := s.m[h]
	if !present {
		return ret == nil
	}
	got, ok := event.Bytes(ret)
	return ok && string(got) == string(want)
}
