//go:build race

package racecheck

import "testing"

// Under -race the detector constant must be true: tests that exercise the
// intentionally racy Table 1 bugs key their skip on it, which is what keeps
// `go test -race ./...` green and meaningful.
func TestDetectorReportedOn(t *testing.T) {
	if !Enabled {
		t.Fatal("racecheck.Enabled = false in a -race build")
	}
}
