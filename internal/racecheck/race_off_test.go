//go:build !race

package racecheck

import "testing"

// Without -race the detector constant must be false: buggy-implementation
// tests rely on it to run (and detect the violation in the log) in plain
// `go test`.
func TestDetectorReportedOff(t *testing.T) {
	if Enabled {
		t.Fatal("racecheck.Enabled = true in a build without -race")
	}
}
