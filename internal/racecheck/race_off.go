//go:build !race

// Package racecheck reports whether the Go race detector is active.
//
// The repository's injected concurrency bugs (the Table 1 errors) are
// intentional data races: under `go test -race` the detector would abort
// those tests before VYRD gets to detect the violation in the log. Tests
// that exercise a buggy implementation skip themselves when the detector
// is on, so `go test -race ./...` remains a meaningful gate for the
// correct implementations and the checker itself.
package racecheck

// Enabled is true when the binary was built with -race.
const Enabled = false
