package linearize

import (
	"fmt"
	"sort"

	"repro/internal/event"
)

// MultisetModel is the purely functional multiset specification for the
// linearizability baseline, mirroring spec.Multiset's semantics (including
// its permissive unsuccessful terminations).
type MultisetModel struct {
	counts map[int]int
	fp     uint64
}

// NewMultisetModel returns the empty multiset state.
func NewMultisetModel() *MultisetModel {
	return &MultisetModel{counts: map[int]int{}, fp: fingerprintCounts(nil)}
}

// fingerprintCounts hashes a counts map order-independently.
func fingerprintCounts(counts map[int]int) uint64 {
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, k := range keys {
		h ^= uint64(k) * 0x9e3779b97f4a7c15
		h *= prime
		h ^= uint64(counts[k])
		h *= prime
	}
	return h
}

// Fingerprint implements Model.
func (m *MultisetModel) Fingerprint() uint64 { return m.fp }

func (m *MultisetModel) with(deltas map[int]int) *MultisetModel {
	next := make(map[int]int, len(m.counts)+len(deltas))
	for k, v := range m.counts {
		next[k] = v
	}
	for k, d := range deltas {
		n := next[k] + d
		if n <= 0 {
			delete(next, k)
		} else {
			next[k] = n
		}
	}
	return &MultisetModel{counts: next, fp: fingerprintCounts(next)}
}

func retSuccess(ret event.Value) (bool, bool) {
	if event.IsExceptional(ret) {
		return false, true
	}
	b, ok := ret.(bool)
	return b, ok
}

// Step implements Model for the multiset's mutators.
func (m *MultisetModel) Step(op Op) (Model, bool) {
	switch op.Method {
	case "Insert":
		if len(op.Args) != 1 {
			return nil, false
		}
		x, okx := event.Int(op.Args[0])
		success, okr := retSuccess(op.Ret)
		if !okx || !okr {
			return nil, false
		}
		if !success {
			return m, true
		}
		return m.with(map[int]int{x: 1}), true

	case "InsertPair":
		if len(op.Args) != 2 {
			return nil, false
		}
		x, okx := event.Int(op.Args[0])
		y, oky := event.Int(op.Args[1])
		success, okr := retSuccess(op.Ret)
		if !okx || !oky || !okr {
			return nil, false
		}
		if !success {
			return m, true
		}
		// Accumulate rather than using a two-key literal: when x == y the
		// literal would collapse to one key and lose a copy.
		deltas := map[int]int{}
		deltas[x]++
		deltas[y]++
		return m.with(deltas), true

	case "Delete":
		if len(op.Args) != 1 {
			return nil, false
		}
		x, okx := event.Int(op.Args[0])
		removed, okr := op.Ret.(bool)
		if !okx || !okr {
			return nil, false
		}
		if !removed {
			return m, true // "not found" is always permitted, as in spec.Multiset
		}
		if m.counts[x] == 0 {
			return nil, false
		}
		return m.with(map[int]int{x: -1}), true

	case "Compress":
		return m, op.Ret == nil
	}
	return nil, false
}

// Check implements Model for the multiset's observer.
func (m *MultisetModel) Check(op Op) bool {
	if op.Method != "LookUp" || len(op.Args) != 1 {
		return false
	}
	x, okx := event.Int(op.Args[0])
	found, okr := op.Ret.(bool)
	return okx && okr && found == (m.counts[x] > 0)
}

// String renders the state for diagnostics.
func (m *MultisetModel) String() string {
	keys := make([]int, 0, len(m.counts))
	for k := range m.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d:%d", k, m.counts[k])
	}
	return out + "}"
}
