package linearize

import (
	"sort"

	"repro/internal/event"
)

// Functional models for the remaining bench subjects. Each mirrors the
// semantics of its executable spec in internal/spec exactly (same
// permitted return values, same exceptional-termination conditions), but
// as an immutable value: Step returns a fresh state and never mutates the
// receiver, which is what lets the engine undo a linearization step by
// restoring a pointer.

const fnvOffset = 14695981039346656037
const fnvPrime = 1099511628211

func mixInt(h uint64, x int) uint64 {
	h ^= uint64(x) * 0x9e3779b97f4a7c15
	h *= fnvPrime
	return h
}

func mixString(h uint64, s string) uint64 {
	h = mixInt(h, len(s))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// ---- Vector ------------------------------------------------------------

// VectorModel is the functional java.util.Vector specification: a sequence
// of integers. Order matters, so the state space over k overlapping
// appends is factorial — the subject that separates the engine from the
// brute checker.
type VectorModel struct {
	elems []int
	fp    uint64
}

// NewVectorModel returns the empty sequence state.
func NewVectorModel() *VectorModel { return &VectorModel{fp: fingerprintSeq(nil)} }

func fingerprintSeq(elems []int) uint64 {
	h := uint64(fnvOffset) ^ 0x51ed270b
	h = mixInt(h, len(elems))
	for _, x := range elems {
		h = mixInt(h, x)
	}
	return h
}

// Fingerprint implements Model.
func (m *VectorModel) Fingerprint() uint64 { return m.fp }

// Len returns the sequence length (diagnostics and tests).
func (m *VectorModel) Len() int { return len(m.elems) }

func (m *VectorModel) with(elems []int) *VectorModel {
	return &VectorModel{elems: elems, fp: fingerprintSeq(elems)}
}

// Step implements Model for the vector's mutators.
func (m *VectorModel) Step(op Op) (Model, bool) {
	switch op.Method {
	case "AddElement":
		if len(op.Args) != 1 || op.Ret != nil {
			return nil, false
		}
		x, ok := event.Int(op.Args[0])
		if !ok {
			return nil, false
		}
		next := make([]int, len(m.elems)+1)
		copy(next, m.elems)
		next[len(m.elems)] = x
		return m.with(next), true

	case "InsertElementAt":
		if len(op.Args) != 2 {
			return nil, false
		}
		x, okx := event.Int(op.Args[0])
		i, oki := event.Int(op.Args[1])
		if !okx || !oki {
			return nil, false
		}
		outOfRange := i < 0 || i > len(m.elems)
		if event.IsExceptional(op.Ret) {
			return m, outOfRange
		}
		if op.Ret != nil || outOfRange {
			return nil, false
		}
		next := make([]int, len(m.elems)+1)
		copy(next, m.elems[:i])
		next[i] = x
		copy(next[i+1:], m.elems[i:])
		return m.with(next), true

	case "RemoveElementAt":
		if len(op.Args) != 1 {
			return nil, false
		}
		i, ok := event.Int(op.Args[0])
		if !ok {
			return nil, false
		}
		outOfRange := i < 0 || i >= len(m.elems)
		if event.IsExceptional(op.Ret) {
			return m, outOfRange
		}
		if op.Ret != nil || outOfRange {
			return nil, false
		}
		next := make([]int, 0, len(m.elems)-1)
		next = append(next, m.elems[:i]...)
		next = append(next, m.elems[i+1:]...)
		return m.with(next), true

	case "RemoveAllElements":
		if op.Ret != nil {
			return nil, false
		}
		return m.with(nil), true

	case "TrimToSize":
		return m, op.Ret == nil
	}
	return nil, false
}

// Check implements Model for the vector's observers.
func (m *VectorModel) Check(op Op) bool {
	switch op.Method {
	case "Size":
		got, ok := event.Int(op.Ret)
		return ok && len(op.Args) == 0 && got == len(m.elems)

	case "ElementAt":
		if len(op.Args) != 1 {
			return false
		}
		i, ok := event.Int(op.Args[0])
		if !ok {
			return false
		}
		if i < 0 || i >= len(m.elems) {
			return event.IsExceptional(op.Ret)
		}
		got, ok := event.Int(op.Ret)
		return ok && got == m.elems[i]

	case "LastIndexOf":
		if len(op.Args) != 1 {
			return false
		}
		x, ok := event.Int(op.Args[0])
		if !ok {
			return false
		}
		got, ok := event.Int(op.Ret)
		if !ok {
			return false // exceptional termination is never permitted
		}
		want := -1
		for i := len(m.elems) - 1; i >= 0; i-- {
			if m.elems[i] == x {
				want = i
				break
			}
		}
		return got == want
	}
	return false
}

// ---- StringBuffer ------------------------------------------------------

// StringBufferModel is the functional specification of n StringBuffer
// analogues addressed by identifiers 0..n-1, mirroring spec.StringBuffers
// (Java's Delete/SetLength exceptional conditions included).
type StringBufferModel struct {
	bufs []string
	fp   uint64
}

// NewStringBufferModel returns n empty buffers.
func NewStringBufferModel(n int) *StringBufferModel {
	bufs := make([]string, n)
	return &StringBufferModel{bufs: bufs, fp: fingerprintStrings(bufs)}
}

func fingerprintStrings(bufs []string) uint64 {
	h := uint64(fnvOffset) ^ 0x7feb352d
	h = mixInt(h, len(bufs))
	for _, s := range bufs {
		h = mixString(h, s)
	}
	return h
}

// Fingerprint implements Model.
func (m *StringBufferModel) Fingerprint() uint64 { return m.fp }

// Content returns buffer id's contents (diagnostics and tests).
func (m *StringBufferModel) Content(id int) string { return m.bufs[id] }

func (m *StringBufferModel) id(args []event.Value, pos int) (int, bool) {
	if pos >= len(args) {
		return 0, false
	}
	id, ok := event.Int(args[pos])
	if !ok || id < 0 || id >= len(m.bufs) {
		return 0, false
	}
	return id, true
}

func (m *StringBufferModel) withSet(id int, content string) *StringBufferModel {
	next := make([]string, len(m.bufs))
	copy(next, m.bufs)
	next[id] = content
	return &StringBufferModel{bufs: next, fp: fingerprintStrings(next)}
}

// Step implements Model for the buffers' mutators.
func (m *StringBufferModel) Step(op Op) (Model, bool) {
	switch op.Method {
	case "Append":
		id, okid := m.id(op.Args, 0)
		if !okid || len(op.Args) != 2 || op.Ret != nil {
			return nil, false
		}
		s, ok := op.Args[1].(string)
		if !ok {
			return nil, false
		}
		return m.withSet(id, m.bufs[id]+s), true

	case "AppendBuffer":
		dst, okd := m.id(op.Args, 0)
		src, oks := m.id(op.Args, 1)
		// Exceptional termination is never permitted: that is exactly how
		// the paper's cross-buffer append bug manifests.
		if !okd || !oks || len(op.Args) != 2 || op.Ret != nil {
			return nil, false
		}
		return m.withSet(dst, m.bufs[dst]+m.bufs[src]), true

	case "Delete":
		id, okid := m.id(op.Args, 0)
		if !okid || len(op.Args) != 3 {
			return nil, false
		}
		start, oks := event.Int(op.Args[1])
		end, oke := event.Int(op.Args[2])
		if !oks || !oke {
			return nil, false
		}
		content := m.bufs[id]
		bad := start < 0 || start > len(content) || start > end
		if event.IsExceptional(op.Ret) {
			return m, bad
		}
		if op.Ret != nil || bad {
			return nil, false
		}
		if end > len(content) {
			end = len(content)
		}
		return m.withSet(id, content[:start]+content[end:]), true

	case "SetLength":
		id, okid := m.id(op.Args, 0)
		if !okid || len(op.Args) != 2 {
			return nil, false
		}
		n, ok := event.Int(op.Args[1])
		if !ok {
			return nil, false
		}
		if event.IsExceptional(op.Ret) {
			return m, n < 0
		}
		if op.Ret != nil || n < 0 {
			return nil, false
		}
		content := m.bufs[id]
		if n <= len(content) {
			return m.withSet(id, content[:n]), true
		}
		pad := make([]byte, n-len(content))
		return m.withSet(id, content+string(pad)), true
	}
	return nil, false
}

// Check implements Model for the buffers' observers.
func (m *StringBufferModel) Check(op Op) bool {
	id, okid := m.id(op.Args, 0)
	if !okid || len(op.Args) != 1 {
		return false
	}
	switch op.Method {
	case "ToString":
		got, ok := op.Ret.(string)
		return ok && got == m.bufs[id]
	case "Length":
		got, ok := event.Int(op.Ret)
		return ok && got == len(m.bufs[id])
	}
	return false
}

// ---- Store -------------------------------------------------------------

// StoreModel is the functional specification of the Boxwood cache/chunk
// store: a map from handles to byte arrays; flush, revoke and reclaim are
// abstract no-ops.
type StoreModel struct {
	m  map[int]string
	fp uint64
}

// NewStoreModel returns the empty store state.
func NewStoreModel() *StoreModel {
	return &StoreModel{m: map[int]string{}, fp: fingerprintIntStrings(nil)}
}

func fingerprintIntStrings(m map[int]string) uint64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	h := uint64(fnvOffset) ^ 0x2545f491
	for _, k := range keys {
		h = mixInt(h, k)
		h = mixString(h, m[k])
	}
	return h
}

// Fingerprint implements Model.
func (m *StoreModel) Fingerprint() uint64 { return m.fp }

func (m *StoreModel) withSet(h int, b string) *StoreModel {
	next := make(map[int]string, len(m.m)+1)
	for k, v := range m.m {
		next[k] = v
	}
	next[h] = b
	return &StoreModel{m: next, fp: fingerprintIntStrings(next)}
}

// Step implements Model for the store's mutators.
func (m *StoreModel) Step(op Op) (Model, bool) {
	switch op.Method {
	case "Write":
		if len(op.Args) != 2 || op.Ret != nil {
			return nil, false
		}
		h, okh := event.Int(op.Args[0])
		buf, okb := event.Bytes(op.Args[1])
		if !okh || !okb {
			return nil, false
		}
		return m.withSet(h, string(buf)), true

	case "Flush", "Revoke", "Compress":
		return m, op.Ret == nil
	}
	return nil, false
}

// Check implements Model for the store's observer.
func (m *StoreModel) Check(op Op) bool {
	if op.Method != "Read" || len(op.Args) != 1 {
		return false
	}
	h, ok := event.Int(op.Args[0])
	if !ok {
		return false
	}
	want, present := m.m[h]
	if !present {
		return op.Ret == nil
	}
	got, ok := event.Bytes(op.Ret)
	return ok && string(got) == want
}

// ---- FS ----------------------------------------------------------------

// FSModel is the functional specification of the Scan file system's data
// path: a map from file names to contents.
type FSModel struct {
	files map[string]string
	fp    uint64
}

// NewFSModel returns the empty file-system state.
func NewFSModel() *FSModel {
	return &FSModel{files: map[string]string{}, fp: fingerprintFiles(nil)}
}

func fingerprintFiles(files map[string]string) uint64 {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	h := uint64(fnvOffset) ^ 0x63d83595
	for _, n := range names {
		h = mixString(h, n)
		h = mixString(h, files[n])
	}
	return h
}

// Fingerprint implements Model.
func (m *FSModel) Fingerprint() uint64 { return m.fp }

func (m *FSModel) withSet(name, content string) *FSModel {
	next := make(map[string]string, len(m.files)+1)
	for k, v := range m.files {
		next[k] = v
	}
	next[name] = content
	return &FSModel{files: next, fp: fingerprintFiles(next)}
}

func (m *FSModel) withDelete(name string) *FSModel {
	next := make(map[string]string, len(m.files))
	for k, v := range m.files {
		if k != name {
			next[k] = v
		}
	}
	return &FSModel{files: next, fp: fingerprintFiles(next)}
}

// Step implements Model for the file system's mutators.
func (m *FSModel) Step(op Op) (Model, bool) {
	name, nameOK := "", false
	if len(op.Args) > 0 {
		name, nameOK = op.Args[0].(string)
	}
	switch op.Method {
	case "Create":
		if !nameOK || len(op.Args) != 1 {
			return nil, false
		}
		created, ok := op.Ret.(bool)
		if !ok {
			return nil, false
		}
		_, exists := m.files[name]
		if created == exists {
			return nil, false
		}
		if !created {
			return m, true
		}
		return m.withSet(name, ""), true

	case "WriteFile", "Append":
		if !nameOK || len(op.Args) != 2 {
			return nil, false
		}
		data, okd := event.Bytes(op.Args[1])
		okRet, okr := op.Ret.(bool)
		if !okd || !okr {
			return nil, false
		}
		old, exists := m.files[name]
		if okRet != exists {
			return nil, false
		}
		if !okRet {
			return m, true
		}
		if op.Method == "WriteFile" {
			return m.withSet(name, string(data)), true
		}
		return m.withSet(name, old+string(data)), true

	case "Delete":
		if !nameOK || len(op.Args) != 1 {
			return nil, false
		}
		removed, ok := op.Ret.(bool)
		if !ok {
			return nil, false
		}
		_, exists := m.files[name]
		if removed != exists {
			return nil, false
		}
		if !removed {
			return m, true
		}
		return m.withDelete(name), true

	case "Compress":
		return m, op.Ret == nil
	}
	return nil, false
}

// Check implements Model for the file system's observer.
func (m *FSModel) Check(op Op) bool {
	if op.Method != "ReadFile" || len(op.Args) != 1 {
		return false
	}
	name, ok := op.Args[0].(string)
	if !ok {
		return false
	}
	want, exists := m.files[name]
	if !exists {
		return op.Ret == nil
	}
	got, ok := event.Bytes(op.Ret)
	return ok && string(got) == want
}
