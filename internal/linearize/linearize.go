// Package linearize checks linearizability of recorded executions from
// call and return actions alone — no commit annotations.
//
// Two checkers live here. CheckBrute is the baseline VYRD's Section 2
// argues against: an exhaustive search over serializations that carries
// every reachable specification state across quiescent cuts, exponential
// in the overlap width. Check is the production engine: Lowe-style
// just-in-time linearization with undo (linearize a pending call, recurse,
// undo on failure), memoization on (linearized-set, state fingerprint) to
// prune revisited configurations, and P-compositionality — independent
// keys or elements are partitioned and their sub-histories checked
// separately, with the per-component witnesses merged back into one global
// linearization. A streaming Checker wraps the engine behind the
// core.EntryChecker surface so linearizability rides the same log
// pipeline, Multi fan-out and remote protocol as refinement, with an
// interval-bounded frontier fast path for fixed-domain models that
// verifies segment by segment at quiescent cuts.
//
// The two verdicts relate but differ: a linearizability failure on a
// complete log implies an I/O-refinement failure on the same log, while
// refinement can additionally reject logs whose commit annotations pin an
// invalid witness or are missing altogether (ViolationInstrumentation).
// The differential harness in internal/bench holds the two checkers
// against each other on every bench subject.
package linearize

import (
	"fmt"
	"sort"

	"repro/internal/event"
)

// Op is one method execution extracted from a trace.
type Op struct {
	Tid     int32
	Method  string
	Args    []event.Value
	Ret     event.Value
	CallSeq int64
	RetSeq  int64
	Mutator bool
}

// Model is a purely functional specification state: Step returns the
// successor state for a mutator (or nil if the transition is impossible),
// and Check validates an observer at the current state. Fingerprint keys
// the memoization table; states with equal fingerprints must be equal.
type Model interface {
	Step(op Op) (Model, bool)
	Check(op Op) bool
	Fingerprint() uint64
}

// Extract pulls the completed method executions out of a recorded trace,
// classifying mutators with the given predicate. Executions the log ends
// in the middle of are dropped: the verdict applies to the completed
// executions, as both checkers assume complete histories. A call on a
// thread that already has one open replaces it (a torn log can lose
// returns), so arbitrary entry streams extract without panicking.
func Extract(entries []event.Entry, isMutator func(string) bool) []Op {
	open := make(map[int32]*Op)
	var ops []Op
	for _, e := range entries {
		switch e.Kind {
		case event.KindCall:
			open[e.Tid] = &Op{
				Tid: e.Tid, Method: e.Method, Args: e.Args,
				CallSeq: e.Seq, Mutator: isMutator(e.Method),
			}
		case event.KindReturn:
			if op := open[e.Tid]; op != nil {
				op.Ret = e.Ret
				op.RetSeq = e.Seq
				ops = append(ops, *op)
				delete(open, e.Tid)
			}
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].CallSeq < ops[j].CallSeq })
	return ops
}

// Result reports the outcome of a linearizability search.
type Result struct {
	// Linearizable is true when some valid serialization exists.
	Linearizable bool
	// Witness holds one valid order (indices into the op list) when found.
	Witness []int
	// StatesExplored counts search configurations visited — the cost the
	// paper's commit actions avoid.
	StatesExplored int64
	// MaxSegment is the widest overlap searched: for the brute checker the
	// widest quiescent segment, for the engine the maximum number of
	// concurrently open executions.
	MaxSegment int
	// Components is the number of independent sub-histories the engine's
	// P-compositional partition produced (1 when partitioning is off or
	// impossible; 0 for the brute checker).
	Components int
	// Aborted is set when the search hit the state budget (or a segment
	// exceeded the representable width) before deciding. The verdict is
	// unknown when set.
	Aborted bool
	// FailSeq is the log sequence number of the latest return in the
	// component that refused to linearize (0 unless Linearizable is false).
	FailSeq int64
}

// String renders the result.
func (r Result) String() string {
	switch {
	case r.Aborted:
		return fmt.Sprintf("aborted after %d states (budget or width exhausted; widest overlap %d)",
			r.StatesExplored, r.MaxSegment)
	case r.Linearizable:
		return fmt.Sprintf("linearizable (%d states explored; widest overlap %d)", r.StatesExplored, r.MaxSegment)
	default:
		return fmt.Sprintf("NOT linearizable (%d states explored; widest overlap %d)", r.StatesExplored, r.MaxSegment)
	}
}

// maxOverlapWidth computes the maximum number of method executions open at
// once — the quantity that drives every linearizability search.
func maxOverlapWidth(ops []Op) int {
	type ev struct {
		seq  int64
		open bool
	}
	evs := make([]ev, 0, 2*len(ops))
	for _, op := range ops {
		evs = append(evs, ev{op.CallSeq, true}, ev{op.RetSeq, false})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
	width, max := 0, 0
	for _, e := range evs {
		if e.open {
			width++
			if width > max {
				max = width
			}
		} else {
			width--
		}
	}
	return max
}
