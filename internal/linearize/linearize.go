// Package linearize implements the baseline VYRD's Section 2 argues
// against: a naive linearizability check that, given only the call and
// return actions of a trace (no commit annotations), searches for some
// serialization of the method executions that is consistent with their
// real-time order and accepted by the specification. A window of k
// mutually overlapping executions admits up to k! candidate orders —
// "clearly, this method would not scale as the number of methods being
// executed concurrently increases" — which is exactly what the commit
// actions of I/O refinement eliminate by pinning a unique witness
// interleaving.
//
// The checker cuts the trace at quiescent points (positions no execution
// spans), searches each segment exhaustively with memoization on (set of
// linearized executions, specification state), and carries every reachable
// end state across the cut — sound and complete, but exponential in the
// overlap width within a segment. The benchmark comparing it against the
// VYRD checker quantifies the paper's scalability claim.
package linearize

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/event"
)

// Op is one method execution extracted from a trace.
type Op struct {
	Tid     int32
	Method  string
	Args    []event.Value
	Ret     event.Value
	CallSeq int64
	RetSeq  int64
	Mutator bool
}

// Model is a purely functional specification state: Step returns the
// successor state for a mutator (or nil if the transition is impossible),
// and Check validates an observer at the current state. Fingerprint keys
// the memoization table; states with equal fingerprints must be equal.
type Model interface {
	Step(op Op) (Model, bool)
	Check(op Op) bool
	Fingerprint() uint64
}

// Extract pulls the completed method executions out of a recorded trace,
// classifying mutators with the given predicate. Executions the log ends
// in the middle of are ignored: this baseline handles complete traces, as
// the Section 2 discussion assumes.
func Extract(entries []event.Entry, isMutator func(string) bool) []Op {
	open := make(map[int32]*Op)
	var ops []Op
	for _, e := range entries {
		switch e.Kind {
		case event.KindCall:
			open[e.Tid] = &Op{
				Tid: e.Tid, Method: e.Method, Args: e.Args,
				CallSeq: e.Seq, Mutator: isMutator(e.Method),
			}
		case event.KindReturn:
			if op := open[e.Tid]; op != nil {
				op.Ret = e.Ret
				op.RetSeq = e.Seq
				ops = append(ops, *op)
				delete(open, e.Tid)
			}
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].CallSeq < ops[j].CallSeq })
	return ops
}

// Result reports the outcome of a linearizability search.
type Result struct {
	// Linearizable is true when some valid serialization exists.
	Linearizable bool
	// Witness holds one valid order (indices into the op list) when found.
	Witness []int
	// StatesExplored counts DFS states visited across all segments — the
	// cost the paper's commit actions avoid.
	StatesExplored int64
	// MaxSegment is the widest segment searched (the overlap width that
	// drives the exponential).
	MaxSegment int
	// Aborted is set when the search hit the state budget (or a segment
	// exceeded the representable width) before deciding.
	Aborted bool
}

// maxSegmentOps bounds a segment's width (the done-set is a bitmask).
const maxSegmentOps = 63

// Check searches for a linearization of ops starting from the initial
// model. maxStates bounds the total search (0 means no bound); exceeding
// it aborts with Aborted set — the expected outcome for wide overlaps,
// which is the point of the baseline.
func Check(ops []Op, initial Model, maxStates int64) Result {
	segments := cutAtQuiescence(ops)
	res := Result{}
	// Every reachable end state of the prefix, with one witness order each.
	states := []carried{{model: initial}}
	base := 0
	for _, seg := range segments {
		if len(seg) > maxSegmentOps {
			res.Aborted = true
			return res
		}
		if len(seg) > res.MaxSegment {
			res.MaxSegment = len(seg)
		}
		var next []carried
		seen := make(map[uint64]bool)
		for _, st := range states {
			s := &searcher{
				ops:       seg,
				base:      base,
				budget:    maxStates,
				spent:     &res.StatesExplored,
				ends:      &next,
				endSeen:   seen,
				prefix:    st,
				memo:      make(map[memoKey]bool),
				collected: make(map[uint64]bool),
			}
			s.collect(st.model, 0, make([]int, 0, len(seg)))
			if s.aborted {
				res.Aborted = true
				return res
			}
		}
		if len(next) == 0 {
			return res // no serialization survives this segment
		}
		states = next
		base += len(seg)
	}
	res.Linearizable = true
	res.Witness = states[0].order
	return res
}

// carried is one reachable specification state at a quiescent cut, with a
// witness order reaching it.
type carried struct {
	model Model
	order []int
}

// cutAtQuiescence splits ops (sorted by call) at points where every earlier
// execution has returned before every later one is called.
func cutAtQuiescence(ops []Op) [][]Op {
	var segments [][]Op
	start := 0
	var maxRet int64
	for i, op := range ops {
		if i > start && op.CallSeq > maxRet {
			segments = append(segments, ops[start:i])
			start = i
		}
		if op.RetSeq > maxRet {
			maxRet = op.RetSeq
		}
	}
	if start < len(ops) {
		segments = append(segments, ops[start:])
	}
	return segments
}

type memoKey struct {
	done  uint64
	state uint64
}

type searcher struct {
	ops    []Op
	base   int // index of ops[0] in the global op list
	budget int64
	spent  *int64

	prefix    carried
	ends      *[]carried
	endSeen   map[uint64]bool
	memo      map[memoKey]bool
	collected map[uint64]bool
	aborted   bool
}

// collect explores every linearization of the segment, recording each
// distinct reachable end state (exhaustive, since a later segment may be
// satisfiable from only some of them).
func (s *searcher) collect(m Model, done uint64, order []int) {
	if s.aborted {
		return
	}
	if len(order) == len(s.ops) {
		fp := m.Fingerprint()
		if !s.endSeen[fp] {
			s.endSeen[fp] = true
			full := make([]int, 0, len(s.prefix.order)+len(order))
			full = append(full, s.prefix.order...)
			for _, idx := range order {
				full = append(full, s.base+idx)
			}
			*s.ends = append(*s.ends, carried{model: m, order: full})
		}
		return
	}
	key := memoKey{done: done, state: m.Fingerprint()}
	if s.memo[key] {
		return
	}
	s.memo[key] = true
	*s.spent++
	if s.budget > 0 && *s.spent > s.budget {
		s.aborted = true
		return
	}

	// An op may be linearized next iff every op that returned before its
	// call has already been linearized (real-time order preservation).
	for i, op := range s.ops {
		bit := uint64(1) << uint(i)
		if done&bit != 0 {
			continue
		}
		eligible := true
		for j, prev := range s.ops {
			pbit := uint64(1) << uint(j)
			if done&pbit != 0 || i == j {
				continue
			}
			if prev.RetSeq < op.CallSeq {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		var next Model
		if op.Mutator {
			var ok bool
			next, ok = m.Step(op)
			if !ok {
				continue
			}
		} else {
			if !m.Check(op) {
				continue
			}
			next = m
		}
		s.collect(next, done|bit, append(order, i))
		if s.aborted {
			return
		}
	}
}

// CheckTrace is the convenience entry point: extract the ops of a recorded
// trace and search, using the spec-derived mutator classification.
func CheckTrace(entries []event.Entry, spec core.Spec, initial Model, maxStates int64) Result {
	ops := Extract(entries, spec.IsMutator)
	return Check(ops, initial, maxStates)
}

// String renders the result.
func (r Result) String() string {
	switch {
	case r.Aborted:
		return fmt.Sprintf("aborted after %d states (budget or width exhausted; widest segment %d)",
			r.StatesExplored, r.MaxSegment)
	case r.Linearizable:
		return fmt.Sprintf("linearizable (%d states explored; widest segment %d)", r.StatesExplored, r.MaxSegment)
	default:
		return fmt.Sprintf("NOT linearizable (%d states explored; widest segment %d)", r.StatesExplored, r.MaxSegment)
	}
}
