package linearize

import (
	"sort"

	"repro/internal/event"
)

// KVModel is the purely functional ordered-map specification for the
// linearizability baseline, mirroring spec.KV's semantics (the B-link
// tree's abstract type: void Insert, strict Delete, Lookup observer).
type KVModel struct {
	m  map[int]int
	fp uint64
}

// NewKVModel returns the empty map state.
func NewKVModel() *KVModel {
	return &KVModel{m: map[int]int{}, fp: fingerprintKV(nil)}
}

func fingerprintKV(m map[int]int) uint64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	const prime = 1099511628211
	h := uint64(14695981039346656037) ^ 0x5bd1e995
	for _, k := range keys {
		h ^= uint64(k) * 0x9e3779b97f4a7c15
		h *= prime
		h ^= uint64(m[k]) + 0x85ebca6b
		h *= prime
	}
	return h
}

// Fingerprint implements Model.
func (m *KVModel) Fingerprint() uint64 { return m.fp }

func (m *KVModel) withSet(k, v int) *KVModel {
	next := make(map[int]int, len(m.m)+1)
	for kk, vv := range m.m {
		next[kk] = vv
	}
	next[k] = v
	return &KVModel{m: next, fp: fingerprintKV(next)}
}

func (m *KVModel) withDelete(k int) *KVModel {
	next := make(map[int]int, len(m.m))
	for kk, vv := range m.m {
		if kk != k {
			next[kk] = vv
		}
	}
	return &KVModel{m: next, fp: fingerprintKV(next)}
}

// Step implements Model for the map's mutators.
func (m *KVModel) Step(op Op) (Model, bool) {
	switch op.Method {
	case "Insert":
		if len(op.Args) != 2 || op.Ret != nil {
			return nil, false
		}
		k, okk := event.Int(op.Args[0])
		v, okv := event.Int(op.Args[1])
		if !okk || !okv {
			return nil, false
		}
		return m.withSet(k, v), true

	case "Delete":
		if len(op.Args) != 1 {
			return nil, false
		}
		k, okk := event.Int(op.Args[0])
		removed, okr := op.Ret.(bool)
		if !okk || !okr {
			return nil, false
		}
		_, present := m.m[k]
		if removed != present {
			return nil, false
		}
		if !removed {
			return m, true
		}
		return m.withDelete(k), true

	case "Compress":
		return m, op.Ret == nil
	}
	return nil, false
}

// Check implements Model for the map's observer.
func (m *KVModel) Check(op Op) bool {
	if op.Method != "Lookup" || len(op.Args) != 1 {
		return false
	}
	k, okk := event.Int(op.Args[0])
	got, okr := event.Int(op.Ret)
	if !okk || !okr {
		return false
	}
	if v, present := m.m[k]; present {
		return got == v
	}
	return got == -1
}
