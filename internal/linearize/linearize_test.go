package linearize

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/blinktree"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/multiset"
	"repro/internal/spec"
	"repro/vyrd"
)

// traceBuilder assembles call/return-only traces.
type traceBuilder struct {
	seq     int64
	entries []event.Entry
}

func (b *traceBuilder) call(tid int32, m string, args ...event.Value) {
	b.seq++
	b.entries = append(b.entries, event.Entry{Seq: b.seq, Tid: tid, Kind: event.KindCall, Method: m, Args: args})
}

func (b *traceBuilder) ret(tid int32, m string, v event.Value) {
	b.seq++
	b.entries = append(b.entries, event.Entry{Seq: b.seq, Tid: tid, Kind: event.KindReturn, Method: m, Ret: v})
}

// checkBoth runs the brute baseline and the engine on the same multiset
// trace, requires them to agree whenever the brute decides, and returns
// the engine's result.
func checkBoth(t *testing.T, b *traceBuilder) Result {
	t.Helper()
	sp := MultisetSpec()
	brute := CheckBruteTrace(b.entries, spec.NewMultiset(), NewMultisetModel(), 1_000_000)
	eng := CheckTrace(b.entries, sp, Options{MaxStates: 1_000_000})
	if eng.Aborted {
		t.Fatalf("engine aborted on a small trace: %s", eng)
	}
	if !brute.Aborted && brute.Linearizable != eng.Linearizable {
		t.Fatalf("brute (%s) and engine (%s) disagree", brute, eng)
	}
	if eng.Linearizable {
		replayWitness(t, Extract(b.entries, sp.IsMutator), eng.Witness, sp.New())
	}
	return eng
}

// replayWitness asserts the witness is a valid linearization: a
// permutation of the ops, consistent with real-time order, accepted by the
// model. This is what makes the engine's partition merge trustworthy.
func replayWitness(t *testing.T, ops []Op, w []int, m Model) {
	t.Helper()
	if len(w) != len(ops) {
		t.Fatalf("witness length %d over %d ops", len(w), len(ops))
	}
	seen := make(map[int]bool, len(w))
	for _, idx := range w {
		if idx < 0 || idx >= len(ops) || seen[idx] {
			t.Fatalf("witness %v is not a permutation of 0..%d", w, len(ops)-1)
		}
		seen[idx] = true
	}
	for i := 0; i < len(w); i++ {
		for j := i + 1; j < len(w); j++ {
			if ops[w[j]].RetSeq < ops[w[i]].CallSeq {
				t.Fatalf("witness violates real-time order: op %d (ret #%d) ordered after op %d (call #%d)",
					w[j], ops[w[j]].RetSeq, w[i], ops[w[i]].CallSeq)
			}
		}
	}
	cur := m
	for _, idx := range w {
		op := ops[idx]
		if op.Mutator {
			next, ok := cur.Step(op)
			if !ok {
				t.Fatalf("witness step rejected at op %d (%s)", idx, op.Method)
			}
			cur = next
		} else if !cur.Check(op) {
			t.Fatalf("witness observer rejected at op %d (%s)", idx, op.Method)
		}
	}
}

// TestSequentialTraceLinearizable: a serial history checks trivially.
func TestSequentialTraceLinearizable(t *testing.T) {
	var b traceBuilder
	b.call(1, "Insert", 3)
	b.ret(1, "Insert", true)
	b.call(1, "LookUp", 3)
	b.ret(1, "LookUp", true)
	b.call(1, "Delete", 3)
	b.ret(1, "Delete", true)
	b.call(1, "LookUp", 3)
	b.ret(1, "LookUp", false)
	res := checkBoth(t, &b)
	if !res.Linearizable {
		t.Fatalf("serial trace rejected: %s", res)
	}
	if len(res.Witness) != 4 {
		t.Fatalf("witness %v", res.Witness)
	}
}

// TestFig3TraceLinearizable: the paper's Fig. 3 overlap — LookUp(3) -> true
// overlapping Insert(3) — is linearizable without any commit annotations,
// but requires search.
func TestFig3TraceLinearizable(t *testing.T) {
	var b traceBuilder
	b.call(1, "LookUp", 3)
	b.call(2, "Insert", 3)
	b.call(3, "Insert", 4)
	b.call(4, "Delete", 3)
	b.ret(1, "LookUp", true)
	b.ret(2, "Insert", true)
	b.ret(3, "Insert", true)
	b.ret(4, "Delete", true)
	res := checkBoth(t, &b)
	if !res.Linearizable {
		t.Fatalf("Fig. 3 trace rejected: %s", res)
	}
}

// TestRealTimeOrderRespected: a LookUp that starts strictly after Delete(3)
// returned cannot see 3.
func TestRealTimeOrderRespected(t *testing.T) {
	var b traceBuilder
	b.call(1, "Insert", 3)
	b.ret(1, "Insert", true)
	b.call(1, "Delete", 3)
	b.ret(1, "Delete", true)
	b.call(1, "LookUp", 3)
	b.ret(1, "LookUp", true) // impossible: 3 was deleted before the call
	res := checkBoth(t, &b)
	if res.Linearizable {
		t.Fatalf("non-linearizable trace accepted: witness %v", res.Witness)
	}
}

// TestImpossibleDeleteRejected: Delete -> true with nothing ever inserted.
func TestImpossibleDeleteRejected(t *testing.T) {
	var b traceBuilder
	b.call(1, "Delete", 9)
	b.ret(1, "Delete", true)
	res := checkBoth(t, &b)
	if res.Linearizable {
		t.Fatal("impossible delete accepted")
	}
}

// TestOverlappedAmbiguityAccepted: with Insert(3) and Delete(3) fully
// overlapped, both LookUp answers are linearizable — the imprecision
// Section 2 attributes to pure testing, which commit actions remove.
func TestOverlappedAmbiguityAccepted(t *testing.T) {
	for _, answer := range []bool{true, false} {
		var b traceBuilder
		b.call(1, "Insert", 3)
		b.call(2, "Delete", 3)
		b.call(3, "LookUp", 3)
		b.ret(3, "LookUp", answer)
		b.ret(1, "Insert", true)
		b.ret(2, "Delete", true)
		res := checkBoth(t, &b)
		if !res.Linearizable {
			t.Fatalf("overlapped LookUp -> %v rejected: %s", answer, res)
		}
	}
}

// TestMemoizationPrunes: a wide but state-collapsing trace (many identical
// failed inserts) stays cheap thanks to (done-set, state) memoization, in
// both checkers.
func TestMemoizationPrunes(t *testing.T) {
	var b traceBuilder
	const k = 12
	for i := 0; i < k; i++ {
		b.call(int32(i+1), "Insert", 7)
	}
	for i := 0; i < k; i++ {
		b.ret(int32(i+1), "Insert", false) // all unsuccessful: state never changes
	}
	brute := CheckBruteTrace(b.entries, spec.NewMultiset(), NewMultisetModel(), 1_000_000)
	if !brute.Linearizable {
		t.Fatalf("brute rejected: %s", brute)
	}
	if brute.StatesExplored > 10_000 {
		t.Fatalf("brute memoization ineffective: %d states for a collapsing trace", brute.StatesExplored)
	}
	eng := CheckTrace(b.entries, MultisetSpec(), Options{MaxStates: 1_000_000})
	if !eng.Linearizable {
		t.Fatalf("engine rejected: %s", eng)
	}
	if eng.StatesExplored > 1_000 {
		t.Fatalf("engine explored %d states for a collapsing trace", eng.StatesExplored)
	}
}

// TestStateBudgetAborts: both searches report abortion instead of hanging
// on wide overlaps with a tiny budget. The trace is unsatisfiable, so
// neither search can short-circuit on a lucky witness — and the
// unsatisfiable observer shares an element with the inserts, so
// partitioning cannot dodge the search either.
func TestStateBudgetAborts(t *testing.T) {
	var b traceBuilder
	const k = 14
	for i := 0; i < k; i++ {
		b.call(int32(i+1), "Insert", 1)
	}
	for i := k - 1; i >= 0; i-- {
		b.ret(int32(i+1), "Insert", true)
	}
	b.call(99, "LookUp", 1)
	b.ret(99, "LookUp", false) // impossible: k copies of 1 were inserted
	res := CheckBruteTrace(b.entries, spec.NewMultiset(), NewMultisetModel(), 50)
	if !res.Aborted {
		t.Fatalf("expected an aborted brute search, got %s", res)
	}
	eng := CheckTrace(b.entries, MultisetSpec(), Options{MaxStates: 5})
	if !eng.Aborted {
		t.Fatalf("expected an aborted engine search, got %s", eng)
	}
}

// TestExponentialGrowthWithOverlapWidth quantifies the Section 2 argument
// against the baseline: the number of explored states grows rapidly with
// the number of mutually overlapping method executions. The engine's
// P-compositionality sidesteps this particular family entirely — the
// impossible observation concerns an element no insert touches, so its
// singleton component is refuted without any search.
func TestExponentialGrowthWithOverlapWidth(t *testing.T) {
	explored := make([]int64, 0, 4)
	for _, k := range []int{4, 6, 8, 10} {
		var b traceBuilder
		// k fully-overlapped inserts of distinct elements followed by an
		// impossible observation: deciding the observer's validity requires
		// visiting every reachable (subset, state) pair — 2^k even with
		// memoization, and k! without it.
		for i := 0; i < k; i++ {
			b.call(int32(i+1), "Insert", i)
		}
		for i := 0; i < k; i++ {
			b.ret(int32(i+1), "Insert", true)
		}
		b.call(99, "LookUp", 999)
		b.ret(99, "LookUp", true)
		res := CheckBruteTrace(b.entries, spec.NewMultiset(), NewMultisetModel(), 1_000_000)
		if res.Linearizable {
			t.Fatalf("k=%d accepted an impossible observation", k)
		}
		explored = append(explored, res.StatesExplored)

		eng := CheckTrace(b.entries, MultisetSpec(), Options{MaxStates: 1_000_000})
		if eng.Linearizable || eng.Aborted {
			t.Fatalf("k=%d: engine verdict wrong: %s", k, eng)
		}
		if eng.StatesExplored > 64 {
			t.Fatalf("k=%d: engine explored %d states; partitioning should isolate the impossible observer", k, eng.StatesExplored)
		}
	}
	t.Logf("brute states explored by overlap width 4/6/8/10: %v", explored)
	for i := 1; i < len(explored); i++ {
		if explored[i] <= explored[i-1] {
			t.Fatalf("expected growth with overlap width: %v", explored)
		}
	}
	if explored[len(explored)-1] < 16*explored[0] {
		t.Fatalf("growth too slow to demonstrate the blow-up: %v", explored)
	}
}

// TestEngineBeatsBruteAtWidth16 is the engine's reason to exist: an
// overlap-width-16 history on the order-sensitive Vector model. The brute
// checker must carry every permutation as a distinct end state (16! of
// them) and cannot finish under any realistic budget; the engine commits
// to the first witness and decides in well under a second.
func TestEngineBeatsBruteAtWidth16(t *testing.T) {
	var b traceBuilder
	const k = 16
	for i := 0; i < k; i++ {
		b.call(int32(i+1), "AddElement", i)
	}
	for i := 0; i < k; i++ {
		b.ret(int32(i+1), "AddElement", nil)
	}
	b.call(99, "Size")
	b.ret(99, "Size", k)

	vb := NewVectorModel()
	brute := CheckBrute(Extract(b.entries, VectorSpec().IsMutator), vb, 200_000)
	if !brute.Aborted {
		t.Fatalf("brute finished a width-%d Vector history: %s", k, brute)
	}

	start := time.Now()
	eng := CheckTrace(b.entries, VectorSpec(), Options{})
	elapsed := time.Since(start)
	if !eng.Linearizable {
		t.Fatalf("engine rejected a clean width-%d history: %s", k, eng)
	}
	replayWitness(t, Extract(b.entries, VectorSpec().IsMutator), eng.Witness, NewVectorModel())
	if elapsed > time.Second {
		t.Fatalf("engine took %v on a width-%d history; must be under 1s", elapsed, k)
	}
	t.Logf("width-%d: brute aborted after %d states; engine decided in %v (%d states)",
		k, brute.StatesExplored, elapsed, eng.StatesExplored)
}

// TestEngineRefutesWideVector: the engine also terminates on a wide
// NON-linearizable Vector history, where no lucky witness exists and the
// memo table is doing the bounding.
func TestEngineRefutesWideVector(t *testing.T) {
	var b traceBuilder
	const k = 8
	for i := 0; i < k; i++ {
		b.call(int32(i+1), "AddElement", i)
	}
	for i := 0; i < k; i++ {
		b.ret(int32(i+1), "AddElement", nil)
	}
	b.call(99, "Size")
	b.ret(99, "Size", k+1) // impossible: only k elements were ever added
	eng := CheckTrace(b.entries, VectorSpec(), Options{MaxStates: 5_000_000})
	if eng.Linearizable || eng.Aborted {
		t.Fatalf("engine verdict wrong on impossible Size: %s", eng)
	}
}

// TestExtractIgnoresIncomplete: executions without a return are dropped.
func TestExtractIgnoresIncomplete(t *testing.T) {
	var b traceBuilder
	b.call(1, "Insert", 1)
	b.ret(1, "Insert", true)
	b.call(2, "Insert", 2) // never returns
	ops := Extract(b.entries, spec.NewMultiset().IsMutator)
	if len(ops) != 1 || ops[0].Method != "Insert" || ops[0].Tid != 1 {
		t.Fatalf("ops %v", ops)
	}
}

// TestPartitioning pins the P-compositional split: independent elements
// land in separate components, InsertPair bridges its two, and a malformed
// (global) op collapses everything into one component.
func TestPartitioning(t *testing.T) {
	var b traceBuilder
	b.call(1, "Insert", 1)
	b.ret(1, "Insert", true)
	b.call(1, "Insert", 2)
	b.ret(1, "Insert", true)
	b.call(1, "Compress")
	b.ret(1, "Compress", nil)
	sp := MultisetSpec()
	res := CheckTrace(b.entries, sp, Options{})
	if !res.Linearizable || res.Components != 3 {
		t.Fatalf("expected 3 components (two elements + one stateless daemon op), got %s with %d", res, res.Components)
	}

	b = traceBuilder{}
	b.call(1, "InsertPair", 1, 2)
	b.ret(1, "InsertPair", true)
	b.call(1, "Insert", 2)
	b.ret(1, "Insert", true)
	b.call(1, "LookUp", 1)
	b.ret(1, "LookUp", true)
	res = CheckTrace(b.entries, sp, Options{})
	if !res.Linearizable || res.Components != 1 {
		t.Fatalf("InsertPair should bridge elements 1 and 2 into one component: %s with %d", res, res.Components)
	}

	// NoPartition forces the single-component path and must agree.
	res2 := CheckTrace(b.entries, sp, Options{NoPartition: true})
	if res2.Linearizable != res.Linearizable {
		t.Fatalf("partitioned (%s) and unpartitioned (%s) disagree", res, res2)
	}
}

// TestEngineAgreesWithBruteOnRandomHistories cross-checks the two
// implementations on randomized small histories — including many
// non-linearizable ones, since returns are invented rather than observed.
func TestEngineAgreesWithBruteOnRandomHistories(t *testing.T) {
	sp := MultisetSpec()
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		entries := randomMultisetHistory(r, 3, 6)
		brute := CheckBruteTrace(entries, spec.NewMultiset(), NewMultisetModel(), 2_000_000)
		eng := CheckTrace(entries, sp, Options{MaxStates: 2_000_000})
		if brute.Aborted || eng.Aborted {
			continue
		}
		if brute.Linearizable != eng.Linearizable {
			t.Fatalf("seed %d: brute (%s) and engine (%s) disagree", seed, brute, eng)
		}
		if eng.Linearizable {
			replayWitness(t, Extract(entries, sp.IsMutator), eng.Witness, sp.New())
		}
	}
}

// randomMultisetHistory emits an arbitrary interleaving of multiset calls
// and returns with invented results; threads bound the overlap width.
func randomMultisetHistory(r *rand.Rand, threads, opsPerThread int) []event.Entry {
	var b traceBuilder
	type openOp struct {
		method string
	}
	open := make(map[int32]*openOp)
	left := make(map[int32]int)
	for tid := int32(1); tid <= int32(threads); tid++ {
		left[tid] = opsPerThread
	}
	methods := []string{"Insert", "Delete", "LookUp", "InsertPair", "Compress"}
	for {
		cands := make([]int32, 0, threads)
		for tid := int32(1); tid <= int32(threads); tid++ {
			if open[tid] != nil || left[tid] > 0 {
				cands = append(cands, tid)
			}
		}
		if len(cands) == 0 {
			return b.entries
		}
		tid := cands[r.Intn(len(cands))]
		if op := open[tid]; op != nil {
			var ret event.Value
			switch op.method {
			case "Compress":
				ret = nil
			default:
				ret = r.Intn(2) == 0
			}
			b.ret(tid, op.method, ret)
			delete(open, tid)
			continue
		}
		m := methods[r.Intn(len(methods))]
		switch m {
		case "InsertPair":
			b.call(tid, m, r.Intn(3), r.Intn(3))
		case "Compress":
			b.call(tid, m)
		default:
			b.call(tid, m, r.Intn(3))
		}
		open[tid] = &openOp{method: m}
		left[tid]--
	}
}

// TestAgreementWithVYRDOnCorrectTraces: on real traces of the correct
// multiset implementation, the commit-driven VYRD check, the baseline and
// the engine all agree (clean) — and the engine never needs to abort.
func TestAgreementWithVYRDOnCorrectTraces(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		target := multiset.Target(32, multiset.BugNone)
		res := harness.Run(target, harness.Config{
			Threads: 3, OpsPerThread: 30, KeyPool: 8, Shrink: true,
			Seed: seed, Level: vyrd.LevelIO,
		})
		entries := res.Log.Snapshot()

		vyrdRep, err := vyrd.CheckEntries(entries, spec.NewMultiset())
		if err != nil {
			t.Fatal(err)
		}
		if !vyrdRep.Ok() {
			t.Fatalf("seed %d: VYRD flagged a correct run:\n%s", seed, vyrdRep)
		}
		lin := CheckBruteTrace(entries, spec.NewMultiset(), NewMultisetModel(), 5_000_000)
		if lin.Aborted {
			t.Logf("seed %d: baseline aborted after %d states (expected for wide overlaps)", seed, lin.StatesExplored)
		} else if !lin.Linearizable {
			t.Fatalf("seed %d: baseline rejected a trace VYRD accepts", seed)
		}
		eng := CheckTrace(entries, MultisetSpec(), Options{MaxStates: 5_000_000})
		if eng.Aborted {
			t.Fatalf("seed %d: engine aborted on a real trace: %s", seed, eng)
		}
		if !eng.Linearizable {
			t.Fatalf("seed %d: engine rejected a trace VYRD accepts: %s", seed, eng)
		}
		replayWitness(t, Extract(entries, MultisetSpec().IsMutator), eng.Witness, NewMultisetModel())
	}
}

// TestKVModelAgreementOnBLinkTreeTraces: same cross-check over the B-link
// tree's abstract type.
func TestKVModelAgreementOnBLinkTreeTraces(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		target := blinktree.Target(4, blinktree.BugNone)
		res := harness.Run(target, harness.Config{
			Threads: 3, OpsPerThread: 25, KeyPool: 8, Shrink: true,
			Seed: seed, Level: vyrd.LevelIO,
		})
		entries := res.Log.Snapshot()

		vyrdRep, err := vyrd.CheckEntries(entries, spec.NewKV())
		if err != nil {
			t.Fatal(err)
		}
		if !vyrdRep.Ok() {
			t.Fatalf("seed %d: VYRD flagged a correct run:\n%s", seed, vyrdRep)
		}
		lin := CheckBruteTrace(entries, spec.NewKV(), NewKVModel(), 5_000_000)
		if lin.Aborted {
			t.Logf("seed %d: baseline aborted (widest segment %d)", seed, lin.MaxSegment)
		} else if !lin.Linearizable {
			t.Fatalf("seed %d: baseline rejected a trace VYRD accepts: %s", seed, lin)
		}
		eng := CheckTrace(entries, KVSpec(), Options{MaxStates: 5_000_000})
		if eng.Aborted || !eng.Linearizable {
			t.Fatalf("seed %d: engine verdict wrong on a correct run: %s", seed, eng)
		}
	}
}

// TestKVModelRejectsImpossible: a Lookup after a quiescent delete cannot
// see the key.
func TestKVModelRejectsImpossible(t *testing.T) {
	var b traceBuilder
	b.call(1, "Insert", 5, 50)
	b.ret(1, "Insert", nil)
	b.call(1, "Delete", 5)
	b.ret(1, "Delete", true)
	b.call(1, "Lookup", 5)
	b.ret(1, "Lookup", 50)
	if res := CheckTrace(b.entries, KVSpec(), Options{}); res.Linearizable {
		t.Fatal("impossible lookup accepted")
	}
	if res := CheckBruteTrace(b.entries, spec.NewKV(), NewKVModel(), 1_000_000); res.Linearizable {
		t.Fatal("brute accepted the impossible lookup")
	}
	// The valid dual passes.
	b = traceBuilder{}
	b.call(1, "Insert", 5, 50)
	b.ret(1, "Insert", nil)
	b.call(1, "Lookup", 5)
	b.ret(1, "Lookup", 50)
	if res := CheckTrace(b.entries, KVSpec(), Options{}); !res.Linearizable {
		t.Fatalf("valid lookup rejected: %s", res)
	}
}

// TestNewModels exercises the four new functional models on short
// scenarios, including the exceptional-termination conditions.
func TestNewModels(t *testing.T) {
	t.Run("vector", func(t *testing.T) {
		var b traceBuilder
		b.call(1, "AddElement", 7)
		b.ret(1, "AddElement", nil)
		b.call(1, "InsertElementAt", 8, 0)
		b.ret(1, "InsertElementAt", nil)
		b.call(1, "ElementAt", 0)
		b.ret(1, "ElementAt", 8)
		b.call(1, "LastIndexOf", 7)
		b.ret(1, "LastIndexOf", 1)
		b.call(1, "RemoveElementAt", 5)
		b.ret(1, "RemoveElementAt", event.Exceptional{Reason: "index out of range"})
		b.call(1, "Size")
		b.ret(1, "Size", 2)
		if res := CheckTrace(b.entries, VectorSpec(), Options{}); !res.Linearizable {
			t.Fatalf("valid vector trace rejected: %s", res)
		}
		b.call(1, "ElementAt", 9)
		b.ret(1, "ElementAt", 1) // impossible: out of range must be exceptional
		if res := CheckTrace(b.entries, VectorSpec(), Options{}); res.Linearizable {
			t.Fatal("out-of-range ElementAt with a value accepted")
		}
	})

	t.Run("stringbuffer", func(t *testing.T) {
		var b traceBuilder
		b.call(1, "Append", 0, "abc")
		b.ret(1, "Append", nil)
		b.call(1, "AppendBuffer", 1, 0)
		b.ret(1, "AppendBuffer", nil)
		b.call(1, "ToString", 1)
		b.ret(1, "ToString", "abc")
		b.call(1, "Delete", 0, 1, 99)
		b.ret(1, "Delete", nil) // end clipped to len: "a" remains
		b.call(1, "Length", 0)
		b.ret(1, "Length", 1)
		b.call(1, "SetLength", 0, -1)
		b.ret(1, "SetLength", event.Exceptional{Reason: "negative length"})
		if res := CheckTrace(b.entries, StringBufferSpec(4), Options{}); !res.Linearizable {
			t.Fatalf("valid stringbuffer trace rejected: %s", res)
		}
		b.call(1, "AppendBuffer", 0, 1)
		b.ret(1, "AppendBuffer", event.Exceptional{Reason: "torn append"}) // never permitted: the paper's bug
		if res := CheckTrace(b.entries, StringBufferSpec(4), Options{}); res.Linearizable {
			t.Fatal("exceptional AppendBuffer accepted")
		}
	})

	t.Run("store", func(t *testing.T) {
		var b traceBuilder
		b.call(1, "Write", 3, []byte("xyz"))
		b.ret(1, "Write", nil)
		b.call(1, "Flush")
		b.ret(1, "Flush", nil)
		b.call(1, "Read", 3)
		b.ret(1, "Read", []byte("xyz"))
		b.call(1, "Read", 4)
		b.ret(1, "Read", nil)
		if res := CheckTrace(b.entries, StoreSpec(), Options{}); !res.Linearizable {
			t.Fatalf("valid store trace rejected: %s", res)
		}
		b.call(1, "Read", 3)
		b.ret(1, "Read", []byte("wrong"))
		if res := CheckTrace(b.entries, StoreSpec(), Options{}); res.Linearizable {
			t.Fatal("stale read accepted")
		}
	})

	t.Run("fs", func(t *testing.T) {
		var b traceBuilder
		b.call(1, "Create", "f")
		b.ret(1, "Create", true)
		b.call(1, "WriteFile", "f", []byte("1"))
		b.ret(1, "WriteFile", true)
		b.call(1, "Append", "f", []byte("2"))
		b.ret(1, "Append", true)
		b.call(1, "ReadFile", "f")
		b.ret(1, "ReadFile", []byte("12"))
		b.call(1, "Delete", "f")
		b.ret(1, "Delete", true)
		b.call(1, "ReadFile", "f")
		b.ret(1, "ReadFile", nil)
		if res := CheckTrace(b.entries, FSSpec(), Options{}); !res.Linearizable {
			t.Fatalf("valid fs trace rejected: %s", res)
		}
		b.call(1, "Create", "f")
		b.ret(1, "Create", false) // impossible: f was deleted, creation must succeed
		if res := CheckTrace(b.entries, FSSpec(), Options{}); res.Linearizable {
			t.Fatal("failed create of an absent file accepted")
		}
	})
}

// TestStreamingChecker drives the core.EntryChecker surface: interval
// resolution at quiescent cuts for fixed-domain specs, deferred engine
// search otherwise, and a report in ModeLinearize either way.
func TestStreamingChecker(t *testing.T) {
	t.Run("clean-fixed-domain", func(t *testing.T) {
		var b traceBuilder
		b.call(1, "Insert", 1)
		b.call(2, "Insert", 2)
		b.ret(1, "Insert", true)
		b.ret(2, "Insert", true)
		// quiescent cut here
		b.call(1, "LookUp", 1)
		b.ret(1, "LookUp", true)
		rep := CheckEntries(b.entries, MultisetSpec(), Options{})
		if !rep.Ok() || rep.Mode != core.ModeLinearize {
			t.Fatalf("clean trace flagged: %s", rep)
		}
		if rep.MethodsCompleted != 3 || rep.EntriesProcessed != int64(len(b.entries)) {
			t.Fatalf("counters wrong: %+v", rep)
		}
	})

	t.Run("violation-at-interval", func(t *testing.T) {
		var b traceBuilder
		b.call(1, "Insert", 1)
		b.ret(1, "Insert", true)
		b.call(1, "LookUp", 1)
		b.ret(1, "LookUp", false) // impossible after the quiescent insert
		failSeq := b.seq
		b.call(1, "Insert", 2)
		b.ret(1, "Insert", true)
		rep := CheckEntries(b.entries, MultisetSpec(), Options{})
		if rep.Ok() {
			t.Fatal("violating trace accepted")
		}
		v := rep.First()
		if v.Kind != core.ViolationLinearizability {
			t.Fatalf("wrong kind: %s", v)
		}
		if v.Seq != failSeq {
			t.Fatalf("violation at #%d, want interval end #%d", v.Seq, failSeq)
		}
	})

	t.Run("deferred-vector", func(t *testing.T) {
		var b traceBuilder
		b.call(1, "AddElement", 1)
		b.call(2, "AddElement", 2)
		b.ret(1, "AddElement", nil)
		b.ret(2, "AddElement", nil)
		b.call(1, "Size")
		b.ret(1, "Size", 2)
		rep := CheckEntries(b.entries, VectorSpec(), Options{})
		if !rep.Ok() {
			t.Fatalf("clean vector trace flagged: %s", rep)
		}
	})

	t.Run("feed-after-finish-panics", func(t *testing.T) {
		c := NewChecker(MultisetSpec(), Options{})
		c.Finish()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		c.Feed(event.Entry{Kind: event.KindCall})
	})

	t.Run("torn-history-no-panic", func(t *testing.T) {
		var b traceBuilder
		b.call(1, "Insert", 1)
		b.call(1, "Insert", 2) // same thread calls again without returning
		b.ret(2, "Delete", true)
		b.ret(1, "Insert", true)
		rep := CheckEntries(b.entries, MultisetSpec(), Options{})
		if !rep.Ok() {
			t.Fatalf("torn history should check its single completed op: %s", rep)
		}
	})
}
