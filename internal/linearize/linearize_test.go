package linearize

import (
	"testing"

	"repro/internal/blinktree"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/multiset"
	"repro/internal/spec"
	"repro/vyrd"
)

// traceBuilder assembles call/return-only traces for the baseline.
type traceBuilder struct {
	seq     int64
	entries []event.Entry
}

func (b *traceBuilder) call(tid int32, m string, args ...event.Value) {
	b.seq++
	b.entries = append(b.entries, event.Entry{Seq: b.seq, Tid: tid, Kind: event.KindCall, Method: m, Args: args})
}

func (b *traceBuilder) ret(tid int32, m string, v event.Value) {
	b.seq++
	b.entries = append(b.entries, event.Entry{Seq: b.seq, Tid: tid, Kind: event.KindReturn, Method: m, Ret: v})
}

func check(t *testing.T, b *traceBuilder) Result {
	t.Helper()
	return CheckTrace(b.entries, spec.NewMultiset(), NewMultisetModel(), 1_000_000)
}

// TestSequentialTraceLinearizable: a serial history checks trivially.
func TestSequentialTraceLinearizable(t *testing.T) {
	var b traceBuilder
	b.call(1, "Insert", 3)
	b.ret(1, "Insert", true)
	b.call(1, "LookUp", 3)
	b.ret(1, "LookUp", true)
	b.call(1, "Delete", 3)
	b.ret(1, "Delete", true)
	b.call(1, "LookUp", 3)
	b.ret(1, "LookUp", false)
	res := check(t, &b)
	if !res.Linearizable {
		t.Fatalf("serial trace rejected: %s", res)
	}
	if len(res.Witness) != 4 {
		t.Fatalf("witness %v", res.Witness)
	}
}

// TestFig3TraceLinearizable: the paper's Fig. 3 overlap — LookUp(3) -> true
// overlapping Insert(3) — is linearizable without any commit annotations,
// but requires search.
func TestFig3TraceLinearizable(t *testing.T) {
	var b traceBuilder
	b.call(1, "LookUp", 3)
	b.call(2, "Insert", 3)
	b.call(3, "Insert", 4)
	b.call(4, "Delete", 3)
	b.ret(1, "LookUp", true)
	b.ret(2, "Insert", true)
	b.ret(3, "Insert", true)
	b.ret(4, "Delete", true)
	res := check(t, &b)
	if !res.Linearizable {
		t.Fatalf("Fig. 3 trace rejected: %s", res)
	}
}

// TestRealTimeOrderRespected: a LookUp that starts strictly after Delete(3)
// returned cannot see 3.
func TestRealTimeOrderRespected(t *testing.T) {
	var b traceBuilder
	b.call(1, "Insert", 3)
	b.ret(1, "Insert", true)
	b.call(1, "Delete", 3)
	b.ret(1, "Delete", true)
	b.call(1, "LookUp", 3)
	b.ret(1, "LookUp", true) // impossible: 3 was deleted before the call
	res := check(t, &b)
	if res.Linearizable {
		t.Fatalf("non-linearizable trace accepted: witness %v", res.Witness)
	}
}

// TestImpossibleDeleteRejected: Delete -> true with nothing ever inserted.
func TestImpossibleDeleteRejected(t *testing.T) {
	var b traceBuilder
	b.call(1, "Delete", 9)
	b.ret(1, "Delete", true)
	res := check(t, &b)
	if res.Linearizable {
		t.Fatal("impossible delete accepted")
	}
}

// TestOverlappedAmbiguityAccepted: with Insert(3) and Delete(3) fully
// overlapped, both LookUp answers are linearizable — the imprecision
// Section 2 attributes to pure testing, which commit actions remove.
func TestOverlappedAmbiguityAccepted(t *testing.T) {
	for _, answer := range []bool{true, false} {
		var b traceBuilder
		b.call(1, "Insert", 3)
		b.call(2, "Delete", 3)
		b.call(3, "LookUp", 3)
		b.ret(3, "LookUp", answer)
		b.ret(1, "Insert", true)
		b.ret(2, "Delete", true)
		res := check(t, &b)
		if !res.Linearizable {
			t.Fatalf("overlapped LookUp -> %v rejected: %s", answer, res)
		}
	}
}

// TestMemoizationPrunes: a wide but state-collapsing trace (many identical
// failed inserts) stays cheap thanks to (done-set, state) memoization.
func TestMemoizationPrunes(t *testing.T) {
	var b traceBuilder
	const k = 12
	for i := 0; i < k; i++ {
		b.call(int32(i+1), "Insert", 7)
	}
	for i := 0; i < k; i++ {
		b.ret(int32(i+1), "Insert", false) // all unsuccessful: state never changes
	}
	res := check(t, &b)
	if !res.Linearizable {
		t.Fatalf("trace rejected: %s", res)
	}
	if res.StatesExplored > 10_000 {
		t.Fatalf("memoization ineffective: %d states for a collapsing trace", res.StatesExplored)
	}
}

// TestStateBudgetAborts: the search reports abortion instead of hanging on
// wide overlaps with a tiny budget. The trace is unsatisfiable, so the
// search cannot short-circuit on a lucky witness.
func TestStateBudgetAborts(t *testing.T) {
	var b traceBuilder
	const k = 14
	for i := 0; i < k; i++ {
		b.call(int32(i+1), "Insert", i)
	}
	for i := k - 1; i >= 0; i-- {
		b.ret(int32(i+1), "Insert", true)
	}
	b.call(99, "LookUp", 999)
	b.ret(99, "LookUp", true) // impossible: forces exhaustive backtracking
	res := CheckTrace(b.entries, spec.NewMultiset(), NewMultisetModel(), 50)
	if !res.Aborted {
		t.Fatalf("expected an aborted search, got %s", res)
	}
}

// TestExponentialGrowthWithOverlapWidth quantifies the Section 2 argument:
// the number of explored states grows rapidly with the number of mutually
// overlapping method executions, while VYRD's commit-driven check is linear
// in the trace (the comparison benchmark measures the latter).
func TestExponentialGrowthWithOverlapWidth(t *testing.T) {
	explored := make([]int64, 0, 4)
	for _, k := range []int{4, 6, 8, 10} {
		var b traceBuilder
		// k fully-overlapped inserts of distinct elements followed by an
		// impossible observation: deciding the observer's validity requires
		// visiting every reachable (subset, state) pair — 2^k even with
		// memoization, and k! without it.
		for i := 0; i < k; i++ {
			b.call(int32(i+1), "Insert", i)
		}
		for i := 0; i < k; i++ {
			b.ret(int32(i+1), "Insert", true)
		}
		b.call(99, "LookUp", 999)
		b.ret(99, "LookUp", true)
		res := check(t, &b)
		if res.Linearizable {
			t.Fatalf("k=%d accepted an impossible observation", k)
		}
		explored = append(explored, res.StatesExplored)
	}
	t.Logf("states explored by overlap width 4/6/8/10: %v", explored)
	for i := 1; i < len(explored); i++ {
		if explored[i] <= explored[i-1] {
			t.Fatalf("expected growth with overlap width: %v", explored)
		}
	}
	if explored[len(explored)-1] < 16*explored[0] {
		t.Fatalf("growth too slow to demonstrate the blow-up: %v", explored)
	}
}

// TestExtractIgnoresIncomplete: executions without a return are dropped.
func TestExtractIgnoresIncomplete(t *testing.T) {
	var b traceBuilder
	b.call(1, "Insert", 1)
	b.ret(1, "Insert", true)
	b.call(2, "Insert", 2) // never returns
	ops := Extract(b.entries, spec.NewMultiset().IsMutator)
	if len(ops) != 1 || ops[0].Method != "Insert" || ops[0].Tid != 1 {
		t.Fatalf("ops %v", ops)
	}
}

// TestAgreementWithVYRDOnCorrectTraces: on real traces of the correct
// multiset implementation, the commit-driven VYRD check and the naive
// enumeration baseline agree (both clean) — VYRD just gets there without
// the search.
func TestAgreementWithVYRDOnCorrectTraces(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		target := multiset.Target(32, multiset.BugNone)
		res := harness.Run(target, harness.Config{
			Threads: 3, OpsPerThread: 30, KeyPool: 8, Shrink: true,
			Seed: seed, Level: vyrd.LevelIO,
		})
		entries := res.Log.Snapshot()

		vyrdRep, err := vyrd.CheckEntries(entries, spec.NewMultiset())
		if err != nil {
			t.Fatal(err)
		}
		if !vyrdRep.Ok() {
			t.Fatalf("seed %d: VYRD flagged a correct run:\n%s", seed, vyrdRep)
		}
		lin := CheckTrace(entries, spec.NewMultiset(), NewMultisetModel(), 5_000_000)
		if lin.Aborted {
			t.Logf("seed %d: baseline aborted after %d states (expected for wide overlaps)", seed, lin.StatesExplored)
			continue
		}
		if !lin.Linearizable {
			t.Fatalf("seed %d: baseline rejected a trace VYRD accepts", seed)
		}
	}
}

// TestKVModelAgreementOnBLinkTreeTraces: the baseline also handles the
// B-link tree's abstract type, agreeing with VYRD on correct traces (where
// it finishes within the state budget).
func TestKVModelAgreementOnBLinkTreeTraces(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		target := blinktree.Target(4, blinktree.BugNone)
		res := harness.Run(target, harness.Config{
			Threads: 3, OpsPerThread: 25, KeyPool: 8, Shrink: true,
			Seed: seed, Level: vyrd.LevelIO,
		})
		entries := res.Log.Snapshot()

		vyrdRep, err := vyrd.CheckEntries(entries, spec.NewKV())
		if err != nil {
			t.Fatal(err)
		}
		if !vyrdRep.Ok() {
			t.Fatalf("seed %d: VYRD flagged a correct run:\n%s", seed, vyrdRep)
		}
		lin := CheckTrace(entries, spec.NewKV(), NewKVModel(), 5_000_000)
		if lin.Aborted {
			t.Logf("seed %d: baseline aborted (widest segment %d)", seed, lin.MaxSegment)
			continue
		}
		if !lin.Linearizable {
			t.Fatalf("seed %d: baseline rejected a trace VYRD accepts: %s", seed, lin)
		}
	}
}

// TestKVModelRejectsImpossible: a Lookup after a quiescent delete cannot
// see the key.
func TestKVModelRejectsImpossible(t *testing.T) {
	var b traceBuilder
	b.call(1, "Insert", 5, 50)
	b.ret(1, "Insert", nil)
	b.call(1, "Delete", 5)
	b.ret(1, "Delete", true)
	b.call(1, "Lookup", 5)
	b.ret(1, "Lookup", 50)
	res := CheckTrace(b.entries, spec.NewKV(), NewKVModel(), 1_000_000)
	if res.Linearizable {
		t.Fatal("impossible lookup accepted")
	}
	// The valid dual passes.
	b = traceBuilder{}
	b.call(1, "Insert", 5, 50)
	b.ret(1, "Insert", nil)
	b.call(1, "Lookup", 5)
	b.ret(1, "Lookup", 50)
	res = CheckTrace(b.entries, spec.NewKV(), NewKVModel(), 1_000_000)
	if !res.Linearizable {
		t.Fatalf("valid lookup rejected: %s", res)
	}
}
