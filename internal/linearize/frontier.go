package linearize

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/wal"
)

// Checker is the streaming linearizability checker: it consumes the same
// framed log entries as the refinement checker, behind the same
// core.EntryChecker surface, so it plugs into the Multi fan-out, the
// online wal pipeline and the remote server unchanged.
//
// A linearizability verdict needs every return value of an overlap window
// before anything in the window can be ordered, so the checker cannot
// decide entry by entry the way commit-pinned refinement does. It resolves
// incrementally instead, with the interval-bounded reduction: for
// fixed-domain specs it closes an interval at every quiescent cut (a log
// position no execution spans), carrying forward the full frontier of
// specification states reachable by some linearization of the prefix —
// sound and complete, and bounded by the model's state space, which is
// what FixedDomain asserts is small. Order-sensitive specs (Vector,
// StringBuffer), whose frontier would be factorial, skip the cuts: the
// completed executions are buffered and one engine search at Finish
// decides the whole history. An interval too wide for the frontier (> 63
// open executions, an overflowing frontier, an exhausted interval budget)
// degrades to the same deferred search instead of giving up.
//
// Executions the log ends in the middle of are dropped: the verdict
// applies to the completed executions.
type Checker struct {
	sp *Spec
	o  Options

	report   core.Report
	done     bool
	finished bool

	open     map[int32]*Op
	ops      []Op // completed executions, in return order
	segStart int  // ops[segStart:] is the interval still unresolved
	carried  []carried
	deferred bool
	states   int64 // configurations visited across interval closures
	lastSeq  int64
}

// segmentBudget bounds the configurations visited closing one interval;
// exceeding it defers the rest of the history to the engine at Finish.
const segmentBudget = 1 << 20

// maxCarried bounds the frontier carried across a cut.
const maxCarried = 4096

// NewChecker returns a streaming checker for the spec.
func NewChecker(sp *Spec, o Options) *Checker {
	return &Checker{
		sp:       sp,
		o:        o,
		open:     make(map[int32]*Op),
		carried:  []carried{{model: sp.New()}},
		deferred: !sp.FixedDomain,
		report:   core.Report{Mode: core.ModeLinearize},
	}
}

// Done reports whether the checker stopped early. A linearizability
// verdict is global, so the first violation is final.
func (c *Checker) Done() bool { return c.done }

// Report returns the current report. It is only complete after Finish.
func (c *Checker) Report() *core.Report { return &c.report }

func (c *Checker) violate(seq int64, detail string) {
	c.report.TotalViolations++
	c.report.Violations = append(c.report.Violations, core.Violation{
		Kind:             core.ViolationLinearizability,
		Seq:              seq,
		Detail:           detail,
		MethodsCompleted: c.report.MethodsCompleted,
	})
	c.done = true
}

// Feed consumes one log entry. Entries must be fed in sequence order.
// Feeding a finished checker panics: a Checker verifies one execution.
func (c *Checker) Feed(e event.Entry) {
	if c.finished {
		panic("linearize: Feed after Finish")
	}
	if c.done {
		return
	}
	c.report.EntriesProcessed++
	c.lastSeq = e.Seq
	switch e.Kind {
	case event.KindCall:
		c.open[e.Tid] = &Op{
			Tid: e.Tid, Method: e.Method, Args: e.Args,
			CallSeq: e.Seq, Mutator: c.sp.IsMutator(e.Method),
		}
	case event.KindReturn:
		op := c.open[e.Tid]
		if op == nil {
			return
		}
		op.Ret = e.Ret
		op.RetSeq = e.Seq
		delete(c.open, e.Tid)
		c.ops = append(c.ops, *op)
		c.report.MethodsCompleted++
		if !op.Mutator {
			c.report.ObserversChecked++
		}
		if !c.deferred && len(c.open) == 0 {
			c.closeInterval(e.Seq)
		}
	}
}

// closeInterval resolves the executions since the last quiescent cut,
// replacing the carried frontier with the states reachable through them.
func (c *Checker) closeInterval(seq int64) {
	seg := c.ops[c.segStart:]
	if len(seg) == 0 {
		return
	}
	if len(seg) > maxSegmentOps {
		c.deferred = true
		return
	}
	sort.Slice(seg, func(i, j int) bool { return seg[i].CallSeq < seg[j].CallSeq })
	var next []carried
	seen := make(map[uint64]bool)
	merge := func(ends []Model) {
		for _, m := range ends {
			fp := m.Fingerprint()
			if !seen[fp] {
				seen[fp] = true
				next = append(next, carried{model: m})
			}
		}
	}
	sig := segmentSignature(seg)
	var spent int64
	for _, st := range c.carried {
		key := segKey{spec: c.sp.Name, start: st.model.Fingerprint(), sig: sig}
		if ends, ok := segLookup(key); ok {
			merge(ends)
			continue
		}
		// Each frontier state searches into its own end set so the
		// complete per-state result is cacheable; the frontier union is
		// deduplicated in merge, same as the shared-set search did.
		var local []carried
		s := &searcher{
			ops:       seg,
			base:      c.segStart,
			budget:    segmentBudget,
			spent:     &spent,
			ends:      &local,
			endSeen:   make(map[uint64]bool),
			prefix:    carried{model: st.model},
			memo:      make(map[memoKey]bool),
			collected: make(map[uint64]bool),
		}
		s.collect(st.model, 0, make([]int, 0, len(seg)))
		if s.aborted {
			c.states += spent
			c.deferred = true
			return
		}
		ends := make([]Model, len(local))
		for i := range local {
			ends[i] = local[i].model
		}
		segStore(key, ends)
		merge(ends)
	}
	c.states += spent
	if len(next) == 0 {
		c.violate(seq, fmt.Sprintf(
			"no linearization of the %d executions in the interval ending at #%d (%s; %d configurations searched)",
			len(seg), seq, c.sp.Name, spent))
		return
	}
	if len(next) > maxCarried {
		c.deferred = true
		return
	}
	for i := range next {
		next[i].order = nil // the frontier carries states, not witnesses
	}
	c.carried = next
	c.segStart = len(c.ops)
}

// Finish completes checking after the last entry and returns the final
// report: any unresolved tail of the history is decided by the engine,
// from every carried frontier state.
func (c *Checker) Finish() *core.Report {
	if c.finished {
		return &c.report
	}
	c.finished = true
	if c.done {
		return &c.report
	}
	tail := c.ops[c.segStart:]
	if len(tail) == 0 {
		return &c.report
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i].CallSeq < tail[j].CallSeq })

	if c.segStart == 0 && len(c.carried) == 1 && len(c.carried[0].order) == 0 {
		// The whole history is one interval from the initial state: the
		// engine gets it with P-compositional partitioning enabled.
		res := Check(tail, c.sp, c.o)
		c.states += res.StatesExplored
		switch {
		case res.Aborted:
			c.report.LogErr = fmt.Sprintf("linearize: %s", res.String())
			c.done = true
		case !res.Linearizable:
			c.violate(maxInt64(res.FailSeq, c.lastSeq), fmt.Sprintf("%s (%s)", res.String(), c.sp.Name))
		}
		return &c.report
	}

	// Mid-history frontier: the prefix's reachable states are exactly the
	// carried set, so the tail is linearizable iff it linearizes from one
	// of them.
	var spent atomic.Int64
	for _, st := range c.carried {
		r := checkJIT(tail, st.model, c.o.MaxStates, &spent)
		if r.aborted {
			c.states += spent.Load()
			c.report.LogErr = fmt.Sprintf(
				"linearize: aborted after %d configurations (state budget exhausted)", spent.Load())
			c.done = true
			return &c.report
		}
		if r.linearizable {
			c.states += spent.Load()
			return &c.report
		}
	}
	c.states += spent.Load()
	c.violate(c.lastSeq, fmt.Sprintf(
		"no linearization of the %d executions after the last quiescent cut (%s; %d frontier states, %d configurations searched)",
		len(tail), c.sp.Name, len(c.carried), spent.Load()))
	return &c.report
}

// StatesExplored reports the configurations visited so far (diagnostics
// and benchmarks).
func (c *Checker) StatesExplored() int64 { return c.states }

// Run consumes entries from the cursor until the log is closed and drained
// (or a violation ends the run early) and returns the final report,
// mirroring core.Checker.Run so the online and remote paths drive both
// checkers identically.
func (c *Checker) Run(cur wal.Reader) *core.Report {
	return core.RunChecker(c, cur)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
