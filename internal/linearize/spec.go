package linearize

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/event"
)

// Spec bundles everything the engine needs to know about one data type:
// how to build its functional model, which methods are observers, and how
// its operations partition.
type Spec struct {
	// Name labels reports and diagnostics.
	Name string
	// New returns the initial model state.
	New func() Model
	// IsMutator classifies methods, mirroring the core.Spec predicate.
	IsMutator func(method string) bool
	// Keys assigns each op the keys/elements it touches, for
	// P-compositional partitioning. ok=false marks a global op — its
	// presence disables partitioning for the whole history. An empty key
	// set with ok=true marks a state-independent op (a daemon's Compress),
	// checked as its own singleton component. A nil Keys disables
	// partitioning entirely (order-sensitive types like Vector).
	Keys func(op Op) ([]string, bool)
	// FixedDomain marks models whose reachable state space is small (maps
	// over a bounded key domain with bounded values, in practice). The
	// streaming Checker uses it to verify interval by interval at
	// quiescent cuts, carrying the reachable state frontier, instead of
	// buffering the history for one search at the end.
	FixedDomain bool
}

// Options tune a search.
type Options struct {
	// MaxStates bounds visited configurations (0 = unbounded). Exceeding
	// it aborts the search undecided (Result.Aborted, or a LogErr on the
	// report surfaces).
	MaxStates int64
	// NoPartition disables P-compositionality even when Spec.Keys is set
	// (benchmarks isolate its contribution this way).
	NoPartition bool
	// Parallel fans the independent component searches of a partitioned
	// history out over a bounded worker pool of that size (<= 1 checks
	// serially). The MaxStates budget is shared across workers through one
	// atomic counter, and the verdict, witness and FailSeq are reduced in
	// component order afterwards. Within budget the result is identical to
	// the serial search; at budget exhaustion, which component observes
	// the exhausted budget depends on scheduling, so a history the serial
	// search decides right at the boundary may come back Aborted (still
	// never a wrong verdict — Aborted is explicitly undecided).
	Parallel int
}

// Check runs the engine over the completed executions (sorted by call
// sequence, as Extract returns them).
func Check(ops []Op, sp *Spec, o Options) Result {
	res := Result{MaxSegment: maxOverlapWidth(ops), Components: 1}
	comps := [][]int{}
	if sp.Keys != nil && !o.NoPartition {
		if c, ok := partition(ops, sp.Keys); ok {
			comps = c
			res.Components = len(c)
		}
	}
	if len(comps) == 0 {
		all := make([]int, len(ops))
		for i := range ops {
			all[i] = i
		}
		comps = [][]int{all}
	}

	subFor := func(comp []int) []Op {
		sub := make([]Op, len(comp))
		for j, gi := range comp {
			sub[j] = ops[gi]
		}
		return sub
	}
	var spent atomic.Int64
	results := make([]jitResult, len(comps))
	if workers := min(o.Parallel, len(comps)); workers > 1 {
		// Components are independent sub-histories (that is what the
		// partition proves), so their searches run concurrently; the
		// reduction below stays in component order for determinism.
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(results) {
						return
					}
					results[i] = checkJIT(subFor(comps[i]), sp.New(), o.MaxStates, &spent)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, comp := range comps {
			results[i] = checkJIT(subFor(comp), sp.New(), o.MaxStates, &spent)
			if results[i].aborted || !results[i].linearizable {
				results = results[:i+1] // serial early exit, verdict decided
				break
			}
		}
	}
	res.StatesExplored = spent.Load()
	witnesses := make([][]int, 0, len(comps))
	for i, r := range results {
		comp := comps[i]
		if r.aborted {
			res.Aborted = true
			return res
		}
		if !r.linearizable {
			for _, gi := range comp {
				if ops[gi].RetSeq > res.FailSeq {
					res.FailSeq = ops[gi].RetSeq
				}
			}
			return res
		}
		w := make([]int, len(r.witness))
		for j, ci := range r.witness {
			w[j] = comp[ci]
		}
		witnesses = append(witnesses, w)
	}
	res.Linearizable = true
	res.Witness = mergeWitnesses(ops, witnesses)
	return res
}

// CheckTrace extracts the completed executions of a recorded trace and
// runs the engine.
func CheckTrace(entries []event.Entry, sp *Spec, o Options) Result {
	return Check(Extract(entries, sp.IsMutator), sp, o)
}

// CheckEntries verifies a recorded trace and renders the outcome as a
// core.Report in ModeLinearize, the shape every CLI/remote surface speaks.
func CheckEntries(entries []event.Entry, sp *Spec, o Options) *core.Report {
	c := NewChecker(sp, o)
	for _, e := range entries {
		c.Feed(e)
	}
	return c.Finish()
}

// ---- Per-subject specs -------------------------------------------------

func intKey(args []event.Value, pos int) (string, bool) {
	if pos >= len(args) {
		return "", false
	}
	x, ok := event.Int(args[pos])
	if !ok {
		return "", false
	}
	return strconv.Itoa(x), true
}

// MultisetSpec covers the multiset family (Multiset-Array, Multiset-Vector,
// Multiset-BinaryTree and the atomized variants): elements are independent,
// so the history partitions per element, with InsertPair bridging its two.
func MultisetSpec() *Spec {
	return &Spec{
		Name:      "multiset",
		New:       func() Model { return NewMultisetModel() },
		IsMutator: func(m string) bool { return m != "LookUp" },
		Keys: func(op Op) ([]string, bool) {
			switch op.Method {
			case "Insert", "Delete", "LookUp":
				k, ok := intKey(op.Args, 0)
				if !ok {
					return nil, false
				}
				return []string{k}, true
			case "InsertPair":
				x, okx := intKey(op.Args, 0)
				y, oky := intKey(op.Args, 1)
				if !okx || !oky {
					return nil, false
				}
				return []string{x, y}, true
			case "Compress":
				return nil, true
			}
			return nil, false
		},
		FixedDomain: true,
	}
}

// KVSpec covers the B-link tree's abstract map (and the KV module of the
// composed BLinkTree-on-Store subject): operations partition per key.
func KVSpec() *Spec {
	return &Spec{
		Name:      "kv",
		New:       func() Model { return NewKVModel() },
		IsMutator: func(m string) bool { return m != "Lookup" },
		Keys: func(op Op) ([]string, bool) {
			switch op.Method {
			case "Insert", "Delete", "Lookup":
				k, ok := intKey(op.Args, 0)
				if !ok {
					return nil, false
				}
				return []string{k}, true
			case "Compress":
				return nil, true
			}
			return nil, false
		},
		FixedDomain: true,
	}
}

// StoreSpec covers the Boxwood cache/chunk-store abstraction (a map from
// handles to byte arrays): operations partition per handle; the flush,
// revoke and reclaim paths are abstract no-ops.
func StoreSpec() *Spec {
	return &Spec{
		Name:      "store",
		New:       func() Model { return NewStoreModel() },
		IsMutator: func(m string) bool { return m != "Read" },
		Keys: func(op Op) ([]string, bool) {
			switch op.Method {
			case "Write", "Read":
				h, ok := intKey(op.Args, 0)
				if !ok {
					return nil, false
				}
				return []string{h}, true
			case "Flush", "Revoke", "Compress":
				return nil, true
			}
			return nil, false
		},
		FixedDomain: true,
	}
}

// FSSpec covers the Scan file system's data path (a map from names to
// contents): operations partition per file name.
func FSSpec() *Spec {
	return &Spec{
		Name:      "fs",
		New:       func() Model { return NewFSModel() },
		IsMutator: func(m string) bool { return m != "ReadFile" },
		Keys: func(op Op) ([]string, bool) {
			switch op.Method {
			case "Create", "WriteFile", "Append", "Delete", "ReadFile":
				if len(op.Args) < 1 {
					return nil, false
				}
				name, ok := op.Args[0].(string)
				if !ok {
					return nil, false
				}
				return []string{name}, true
			case "Compress":
				return nil, true
			}
			return nil, false
		},
		FixedDomain: true,
	}
}

// VectorSpec covers java.util.Vector: a single order-sensitive sequence,
// unpartitionable, with an exponential reachable state space — the
// worst-case subject every linearizability search should be judged on.
func VectorSpec() *Spec {
	return &Spec{
		Name: "vector",
		New:  func() Model { return NewVectorModel() },
		IsMutator: func(m string) bool {
			switch m {
			case "Size", "ElementAt", "LastIndexOf":
				return false
			}
			return true
		},
	}
}

// StringBufferSpec covers the java.util.StringBuffer family addressed by
// small integer identifiers: buffers are independent until a cross-buffer
// AppendBuffer bridges its two.
func StringBufferSpec(n int) *Spec {
	return &Spec{
		Name: "stringbuffer",
		New:  func() Model { return NewStringBufferModel(n) },
		IsMutator: func(m string) bool {
			switch m {
			case "ToString", "Length":
				return false
			}
			return true
		},
		Keys: func(op Op) ([]string, bool) {
			switch op.Method {
			case "Append", "Delete", "SetLength", "ToString", "Length":
				id, ok := intKey(op.Args, 0)
				if !ok {
					return nil, false
				}
				return []string{id}, true
			case "AppendBuffer":
				dst, okd := intKey(op.Args, 0)
				src, oks := intKey(op.Args, 1)
				if !okd || !oks {
					return nil, false
				}
				return []string{dst, src}, true
			}
			return nil, false
		},
	}
}

// SpecByName returns the spec family for a registered name (the strings
// the bench registry and CLI agree on).
func SpecByName(name string) (*Spec, error) {
	switch name {
	case "multiset":
		return MultisetSpec(), nil
	case "kv":
		return KVSpec(), nil
	case "store":
		return StoreSpec(), nil
	case "fs":
		return FSSpec(), nil
	case "vector":
		return VectorSpec(), nil
	case "stringbuffer":
		return StringBufferSpec(4), nil
	}
	return nil, fmt.Errorf("linearize: unknown spec %q", name)
}
