package linearize

import "sync/atomic"

// The production engine: Gavin Lowe's just-in-time linearization with
// undo. The history is a doubly-linked event list (one call node and one
// return node per execution, in log order). The search walks from the
// front of the list: at a call node it tries to linearize that execution
// (step the model, push an undo frame, unlink the call/return pair,
// restart at the front); at a return node every candidate at the current
// configuration is exhausted, so it pops the most recent frame, restores
// the model, relinks the pair and resumes after the popped call. Walking
// from the front makes the real-time order check free — an execution is a
// candidate exactly when its call node precedes the first remaining return
// node — and a configuration (set of linearized executions, model state)
// is visited at most once thanks to the memo table, which stores exact
// bitset copies (a hash-only memo could conflate configurations and
// unsoundly prune a real witness).

// bitset is a fixed-capacity bit vector over op indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, w := range b {
		h ^= w
		h *= prime
	}
	return h
}

func (b bitset) equal(o bitset) bool {
	for i, w := range b {
		if o[i] != w {
			return false
		}
	}
	return true
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// memoTable records visited configurations with exact comparison: buckets
// are keyed by a mixed hash, entries compare the full bitset. State
// equality is delegated to the Model fingerprint, whose contract requires
// equal fingerprints to mean equal states.
type memoTable struct {
	m map[uint64][]memoEnt
}

type memoEnt struct {
	done bitset
	fp   uint64
}

func newMemoTable() *memoTable { return &memoTable{m: make(map[uint64][]memoEnt)} }

// add records the configuration and reports whether it was fresh.
func (t *memoTable) add(done bitset, fp uint64) bool {
	h := done.hash() ^ (fp * 0x9e3779b97f4a7c15)
	for _, e := range t.m[h] {
		if e.fp == fp && e.done.equal(done) {
			return false
		}
	}
	t.m[h] = append(t.m[h], memoEnt{done: done.clone(), fp: fp})
	return true
}

// enode is one event in the doubly-linked history list.
type enode struct {
	prev, next *enode
	match      *enode // call node -> its return node; nil on return nodes
	op         int    // index into the component's op slice
	seq        int64
}

// lift unlinks a call node and its return node (the execution has been
// linearized). unlift restores them; restores happen in reverse lift
// order (the undo stack is LIFO), which keeps the neighbor pointers valid.
func lift(n *enode) {
	n.prev.next = n.next
	n.next.prev = n.prev
	m := n.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

func unlift(n *enode) {
	m := n.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	n.prev.next = n
	n.next.prev = n
}

// frame is one undo record: the call node that was linearized and the
// model state before the step. Models are functional, so "restoring" the
// state is a pointer assignment, not a copy.
type frame struct {
	n    *enode
	prev Model
}

// jitResult is the outcome of one component search.
type jitResult struct {
	linearizable bool
	witness      []int // indices into the component's op slice
	aborted      bool
}

// checkJIT searches for one linearization of ops (sorted by CallSeq) from
// initial. spent accumulates visited configurations across calls — it is
// atomic so parallel component searches share one budget; when budget > 0
// and the total exceeds it, the search aborts undecided.
func checkJIT(ops []Op, initial Model, budget int64, spent *atomic.Int64) jitResult {
	if len(ops) == 0 {
		return jitResult{linearizable: true}
	}

	// Build the event list in log order. Within one log every sequence
	// number is unique, so a simple merge of per-op pairs after sorting
	// all nodes suffices.
	nodes := make([]enode, 2*len(ops))
	order := make([]*enode, 0, 2*len(ops))
	for i, op := range ops {
		call, ret := &nodes[2*i], &nodes[2*i+1]
		call.op, call.seq, call.match = i, op.CallSeq, ret
		ret.op, ret.seq = i, op.RetSeq
		order = append(order, call, ret)
	}
	sortNodes(order)
	head := &enode{}
	prev := head
	for _, n := range order {
		prev.next = n
		n.prev = prev
		prev = n
	}

	var (
		state      = initial
		linearized = newBitset(len(ops))
		stack      = make([]frame, 0, len(ops))
		memo       = newMemoTable()
		entry      = head.next
	)
	memo.add(linearized, state.Fingerprint())

	for {
		if head.next == nil {
			w := make([]int, len(stack))
			for i, f := range stack {
				w[i] = f.n.op
			}
			return jitResult{linearizable: true, witness: w}
		}
		if entry.match != nil {
			// Call node: try to linearize this execution now.
			op := ops[entry.op]
			var next Model
			ok := false
			if op.Mutator {
				next, ok = state.Step(op)
			} else if state.Check(op) {
				next, ok = state, true
			}
			if ok {
				linearized.set(entry.op)
				if memo.add(linearized, next.Fingerprint()) {
					if s := spent.Add(1); budget > 0 && s > budget {
						return jitResult{aborted: true}
					}
					stack = append(stack, frame{n: entry, prev: state})
					state = next
					lift(entry)
					entry = head.next
					continue
				}
				linearized.clear(entry.op) // configuration already explored
			}
			entry = entry.next
		} else {
			// Return node of an unlinearized execution: every candidate at
			// this configuration failed. Backtrack.
			if len(stack) == 0 {
				return jitResult{}
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = f.prev
			linearized.clear(f.n.op)
			unlift(f.n)
			entry = f.n.next
		}
	}
}

// sortNodes orders event nodes by sequence number (insertion sort is fine:
// the input is two interleaved sorted sequences, nearly in order already).
func sortNodes(ns []*enode) {
	for i := 1; i < len(ns); i++ {
		n := ns[i]
		j := i - 1
		for j >= 0 && ns[j].seq > n.seq {
			ns[j+1] = ns[j]
			j--
		}
		ns[j+1] = n
	}
}
