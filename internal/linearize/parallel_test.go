package linearize

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomMultisetTrace builds a well-formed concurrent multiset history:
// nKeys independent element families with overlapping Insert/Delete/LookUp
// executions per key, so the partition yields many components for the
// worker pool to fan over.
func randomMultisetTrace(seed int64, nKeys, opsPerKey int) *traceBuilder {
	rng := rand.New(rand.NewSource(seed))
	b := &traceBuilder{}
	tid := int32(0)
	for k := 0; k < nKeys; k++ {
		inserted := 0
		for i := 0; i < opsPerKey; i++ {
			tid++
			switch rng.Intn(3) {
			case 0:
				b.call(tid, "Insert", k)
				b.ret(tid, "Insert", true)
				inserted++
			case 1:
				b.call(tid, "Delete", k)
				b.ret(tid, "Delete", inserted > 0)
				if inserted > 0 {
					inserted--
				}
			default:
				b.call(tid, "LookUp", k)
				b.ret(tid, "LookUp", inserted > 0)
			}
		}
	}
	return b
}

// TestParallelComponentsMatchSerial pins the parallel component fan-out
// against the serial search: same verdict, same witness, same component
// count and same states explored, for every pool width — the reduction in
// component order makes scheduling invisible.
func TestParallelComponentsMatchSerial(t *testing.T) {
	sp := MultisetSpec()
	for seed := int64(1); seed <= 6; seed++ {
		b := randomMultisetTrace(seed, 8, 6)
		ops := Extract(b.entries, sp.IsMutator)
		serial := Check(ops, sp, Options{MaxStates: 1 << 20})
		if serial.Components < 2 {
			t.Fatalf("seed %d: expected a partitioned history, got %d components", seed, serial.Components)
		}
		if !serial.Linearizable {
			t.Fatalf("seed %d: generator produced a non-linearizable sequential history: %s", seed, serial.String())
		}
		for _, workers := range []int{2, 4, 16} {
			par := Check(ops, sp, Options{MaxStates: 1 << 20, Parallel: workers})
			if par.Linearizable != serial.Linearizable || par.Aborted != serial.Aborted {
				t.Fatalf("seed %d, %d workers: verdict diverged: serial %s, parallel %s",
					seed, workers, serial.String(), par.String())
			}
			if par.Components != serial.Components {
				t.Fatalf("seed %d, %d workers: components %d vs %d", seed, workers, par.Components, serial.Components)
			}
			if serial.Linearizable {
				if par.StatesExplored != serial.StatesExplored {
					t.Fatalf("seed %d, %d workers: states %d vs %d — component searches are not independent",
						seed, workers, par.StatesExplored, serial.StatesExplored)
				}
				if !reflect.DeepEqual(par.Witness, serial.Witness) {
					t.Fatalf("seed %d, %d workers: witness diverged", seed, workers)
				}
			}
		}
	}
}

// TestParallelVerdictOnViolation pins the deterministic reduction on a
// failing history: the violation lands on the same component (and FailSeq)
// however many workers run.
func TestParallelVerdictOnViolation(t *testing.T) {
	sp := MultisetSpec()
	b := randomMultisetTrace(7, 6, 4)
	// Append an impossible observation on its own key: LookUp sees an
	// element that was never inserted.
	b.call(999, "LookUp", 77)
	b.ret(999, "LookUp", true)
	ops := Extract(b.entries, sp.IsMutator)
	serial := Check(ops, sp, Options{MaxStates: 1 << 20})
	if serial.Linearizable || serial.Aborted {
		t.Fatalf("planted violation not caught serially: %s", serial.String())
	}
	for _, workers := range []int{2, 8} {
		par := Check(ops, sp, Options{MaxStates: 1 << 20, Parallel: workers})
		if par.Linearizable || par.Aborted {
			t.Fatalf("%d workers: planted violation lost: %s", workers, par.String())
		}
		if par.FailSeq != serial.FailSeq {
			t.Fatalf("%d workers: FailSeq %d, serial %d", workers, par.FailSeq, serial.FailSeq)
		}
	}
}

// TestParallelSharedBudget pins the shared-budget semantics: a bounded
// parallel search over an oversized history still aborts rather than
// running unbounded.
func TestParallelSharedBudget(t *testing.T) {
	sp := MultisetSpec()
	b := randomMultisetTrace(11, 8, 8)
	ops := Extract(b.entries, sp.IsMutator)
	par := Check(ops, sp, Options{MaxStates: 3, Parallel: 4})
	if !par.Aborted {
		t.Fatalf("expected an aborted search under a 3-state budget, got %s", par.String())
	}
	// Every component search that starts after exhaustion burns exactly
	// one probe before observing the spent budget, so the overshoot is
	// bounded by the component count.
	if par.StatesExplored > 3+int64(par.Components) {
		t.Fatalf("workers overshot the shared budget: %d states over %d components",
			par.StatesExplored, par.Components)
	}
}
