package linearize

import (
	"testing"

	"repro/internal/event"
	"repro/internal/spec"
)

// decodeHistory turns an arbitrary byte string into a call/return history
// over the multiset vocabulary. The decoder deliberately produces torn and
// unbalanced shapes: returns without a call, calls that never return,
// same-thread re-calls, interleaved commit entries the linearizability
// checkers must ignore — everything a crashed or truncated log can contain.
func decodeHistory(data []byte) []event.Entry {
	var entries []event.Entry
	var seq int64
	open := make(map[int32]string)
	methods := []string{"Insert", "Delete", "LookUp", "InsertPair", "Compress"}
	for i := 0; i+2 < len(data); i += 3 {
		a, b, c := data[i], data[i+1], data[i+2]
		tid := int32(a%4) + 1
		seq++
		switch a % 8 {
		case 6: // a bare return with no matching call (torn log head)
			entries = append(entries, event.Entry{
				Seq: seq, Tid: 100 + tid, Kind: event.KindReturn,
				Method: methods[int(b)%len(methods)], Ret: c%2 == 0,
			})
			continue
		case 7: // a commit entry; call/return-only checkers must skip it
			entries = append(entries, event.Entry{
				Seq: seq, Tid: tid, Kind: event.KindCommit, Method: "Insert",
			})
			continue
		}
		if m, ok := open[tid]; ok && b%3 != 0 {
			var ret event.Value
			switch c % 4 {
			case 0:
				ret = false
			case 1:
				ret = true
			case 2:
				ret = nil
			case 3:
				ret = event.Exceptional{Reason: "fuzz"}
			}
			entries = append(entries, event.Entry{Seq: seq, Tid: tid, Kind: event.KindReturn, Method: m, Ret: ret})
			delete(open, tid)
			continue
		}
		m := methods[int(b)%len(methods)]
		var args []event.Value
		switch m {
		case "InsertPair":
			args = []event.Value{int(c % 3), int(c / 3 % 3)}
		case "Compress":
		default:
			args = []event.Value{int(c % 3)}
		}
		entries = append(entries, event.Entry{Seq: seq, Tid: tid, Kind: event.KindCall, Method: m, Args: args})
		open[tid] = m // overwrites a still-open op: same-thread re-call
	}
	return entries
}

// FuzzLinearizeArbitraryHistory drives the engine and the streaming
// checker over arbitrary decoded histories. Invariants: no panic on any
// input; on histories narrow enough for the brute baseline to decide
// (overlap width <= 6), engine and baseline verdicts agree; the streaming
// checker agrees with the engine whenever neither gave up.
func FuzzLinearizeArbitraryHistory(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 2, 2})
	f.Add([]byte{6, 0, 0, 7, 1, 1, 2, 3, 4, 3, 2, 1})
	f.Add([]byte{1, 3, 2, 1, 1, 0, 2, 3, 5, 2, 1, 1, 3, 4, 7, 3, 1, 2})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20})
	sp := MultisetSpec()
	f.Fuzz(func(t *testing.T, data []byte) {
		entries := decodeHistory(data)

		eng := CheckTrace(entries, sp, Options{MaxStates: 200_000})
		rep := CheckEntries(entries, sp, Options{MaxStates: 200_000})
		if !eng.Aborted && rep.LogErr == "" && rep.Ok() != eng.Linearizable {
			t.Fatalf("engine (%s) and streaming checker (ok=%v) disagree", eng, rep.Ok())
		}

		ops := Extract(entries, sp.IsMutator)
		if maxOverlapWidth(ops) > 6 {
			return
		}
		brute := CheckBruteTrace(entries, spec.NewMultiset(), NewMultisetModel(), 200_000)
		if brute.Aborted || eng.Aborted {
			return
		}
		if brute.Linearizable != eng.Linearizable {
			t.Fatalf("brute (%s) and engine (%s) disagree on a width<=6 history", brute, eng)
		}
	})
}
