package linearize

import (
	"repro/internal/core"
	"repro/internal/event"
)

// This file is the retained baseline checker ("the strawman"): the naive
// search VYRD's Section 2 argues against. A window of k mutually
// overlapping executions admits up to k! candidate orders — "clearly, this
// method would not scale as the number of methods being executed
// concurrently increases". The checker cuts the trace at quiescent points
// (positions no execution spans), searches each segment exhaustively with
// memoization on (set of linearized executions, specification state), and
// carries every reachable end state across the cut — sound and complete,
// but exponential in the overlap width within a segment, because it must
// enumerate all end states rather than stop at a first witness. It stays
// in the tree as the oracle the engine is fuzzed against and as the
// baseline column of `vyrdbench -table linearize`.

// maxSegmentOps bounds a segment's width (the done-set is a bitmask).
const maxSegmentOps = 63

// CheckBrute searches for a linearization of ops starting from the initial
// model with the baseline algorithm. maxStates bounds the total search
// (0 means no bound); exceeding it aborts with Aborted set — the expected
// outcome for wide overlaps, which is the point of the baseline.
func CheckBrute(ops []Op, initial Model, maxStates int64) Result {
	segments := cutAtQuiescence(ops)
	res := Result{}
	// Every reachable end state of the prefix, with one witness order each.
	states := []carried{{model: initial}}
	base := 0
	for _, seg := range segments {
		if len(seg) > maxSegmentOps {
			res.Aborted = true
			return res
		}
		if len(seg) > res.MaxSegment {
			res.MaxSegment = len(seg)
		}
		var next []carried
		seen := make(map[uint64]bool)
		for _, st := range states {
			s := &searcher{
				ops:       seg,
				base:      base,
				budget:    maxStates,
				spent:     &res.StatesExplored,
				ends:      &next,
				endSeen:   seen,
				prefix:    st,
				memo:      make(map[memoKey]bool),
				collected: make(map[uint64]bool),
			}
			s.collect(st.model, 0, make([]int, 0, len(seg)))
			if s.aborted {
				res.Aborted = true
				return res
			}
		}
		if len(next) == 0 {
			res.FailSeq = seg[len(seg)-1].RetSeq
			for _, op := range seg {
				if op.RetSeq > res.FailSeq {
					res.FailSeq = op.RetSeq
				}
			}
			return res // no serialization survives this segment
		}
		states = next
		base += len(seg)
	}
	res.Linearizable = true
	res.Witness = states[0].order
	return res
}

// carried is one reachable specification state at a quiescent cut, with a
// witness order reaching it.
type carried struct {
	model Model
	order []int
}

// cutAtQuiescence splits ops (sorted by call) at points where every earlier
// execution has returned before every later one is called.
func cutAtQuiescence(ops []Op) [][]Op {
	var segments [][]Op
	start := 0
	var maxRet int64
	for i, op := range ops {
		if i > start && op.CallSeq > maxRet {
			segments = append(segments, ops[start:i])
			start = i
		}
		if op.RetSeq > maxRet {
			maxRet = op.RetSeq
		}
	}
	if start < len(ops) {
		segments = append(segments, ops[start:])
	}
	return segments
}

type memoKey struct {
	done  uint64
	state uint64
}

type searcher struct {
	ops    []Op
	base   int // index of ops[0] in the global op list
	budget int64
	spent  *int64

	prefix    carried
	ends      *[]carried
	endSeen   map[uint64]bool
	memo      map[memoKey]bool
	collected map[uint64]bool
	aborted   bool
}

// collect explores every linearization of the segment, recording each
// distinct reachable end state (exhaustive, since a later segment may be
// satisfiable from only some of them).
func (s *searcher) collect(m Model, done uint64, order []int) {
	if s.aborted {
		return
	}
	if len(order) == len(s.ops) {
		fp := m.Fingerprint()
		if !s.endSeen[fp] {
			s.endSeen[fp] = true
			full := make([]int, 0, len(s.prefix.order)+len(order))
			full = append(full, s.prefix.order...)
			for _, idx := range order {
				full = append(full, s.base+idx)
			}
			*s.ends = append(*s.ends, carried{model: m, order: full})
		}
		return
	}
	key := memoKey{done: done, state: m.Fingerprint()}
	if s.memo[key] {
		return
	}
	s.memo[key] = true
	*s.spent++
	if s.budget > 0 && *s.spent > s.budget {
		s.aborted = true
		return
	}

	// An op may be linearized next iff every op that returned before its
	// call has already been linearized (real-time order preservation).
	for i, op := range s.ops {
		bit := uint64(1) << uint(i)
		if done&bit != 0 {
			continue
		}
		eligible := true
		for j, prev := range s.ops {
			pbit := uint64(1) << uint(j)
			if done&pbit != 0 || i == j {
				continue
			}
			if prev.RetSeq < op.CallSeq {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		var next Model
		if op.Mutator {
			var ok bool
			next, ok = m.Step(op)
			if !ok {
				continue
			}
		} else {
			if !m.Check(op) {
				continue
			}
			next = m
		}
		s.collect(next, done|bit, append(order, i))
		if s.aborted {
			return
		}
	}
}

// CheckBruteTrace is the baseline's convenience entry point: extract the
// ops of a recorded trace and search, using the spec-derived mutator
// classification.
func CheckBruteTrace(entries []event.Entry, spec core.Spec, initial Model, maxStates int64) Result {
	ops := Extract(entries, spec.IsMutator)
	return CheckBrute(ops, initial, maxStates)
}
