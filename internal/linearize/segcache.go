package linearize

import (
	"encoding/binary"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// The segment memo cache persists interval-closure results across
// segments, checkers and sessions. A fleet box runs hundreds of sessions
// streaming structurally identical histories (load generators replay one
// recorded log; production producers repeat the same access patterns), so
// the same (frontier state, segment shape) search recurs constantly. The
// closure of an interval is a pure function of the start state and the
// segment's observable content — methods, arguments, returns and the
// real-time overlap structure, nothing else — so its reachable end-state
// set can be reused wherever that exact pair recurs. Models are immutable
// by contract (Step returns a fresh state), which is what makes sharing
// the cached states across goroutines safe.
//
// Aborted searches are never cached: an abort reflects the budget, not
// the history, and a different caller may have budget to finish it.
// Definite no-linearization results (an empty end set) are cached — they
// are as deterministic as the positive ones.

// segKey identifies one interval-closure search exactly: the spec, the
// start state's fingerprint, and the canonical segment signature.
type segKey struct {
	spec  string
	start uint64
	sig   string
}

// maxSegCacheEntries bounds the cache; at the cap, new results are simply
// not inserted (lookups still hit the resident set, which under the
// repetitive workloads the cache targets is the hot set anyway).
const maxSegCacheEntries = 1 << 16

var segCache = struct {
	mu sync.RWMutex
	m  map[segKey][]Model

	lookups atomic.Int64
	hits    atomic.Int64
}{m: make(map[segKey][]Model)}

// segLookup returns the cached reachable end states for one search, if
// present.
func segLookup(key segKey) ([]Model, bool) {
	segCache.lookups.Add(1)
	segCache.mu.RLock()
	ends, ok := segCache.m[key]
	segCache.mu.RUnlock()
	if ok {
		segCache.hits.Add(1)
	}
	return ends, ok
}

// segStore records a completed (never aborted) search result.
func segStore(key segKey, ends []Model) {
	segCache.mu.Lock()
	if len(segCache.m) < maxSegCacheEntries {
		segCache.m[key] = ends
	}
	segCache.mu.Unlock()
}

// SegCacheStats is the cache's observable state: Lookups and Hits count
// interval-closure searches asked of the cache and answered by it
// (hit-rate = Hits/Lookups); Entries is the resident result count.
type SegCacheStats struct {
	Lookups int64
	Hits    int64
	Entries int
}

// SegmentCacheStats snapshots the process-wide segment memo cache.
func SegmentCacheStats() SegCacheStats {
	segCache.mu.RLock()
	entries := len(segCache.m)
	segCache.mu.RUnlock()
	return SegCacheStats{
		Lookups: segCache.lookups.Load(),
		Hits:    segCache.hits.Load(),
		Entries: entries,
	}
}

// ResetSegmentCache clears the cache and its counters (tests and
// benchmark isolation).
func ResetSegmentCache() {
	segCache.mu.Lock()
	segCache.m = make(map[segKey][]Model)
	segCache.mu.Unlock()
	segCache.lookups.Store(0)
	segCache.hits.Store(0)
}

// segmentSignature renders a segment (sorted by call sequence) in a
// canonical form: each op's method, arguments, return and mutator class
// via the event value formatter, plus the rank-normalized call/return
// positions. Ranks rather than raw sequence numbers make the signature
// position-independent — the same overlap pattern at log offset 40 and
// 40000 is one key — and thread ids are omitted because linearizability
// only constrains real-time order, not which thread ran an op.
func segmentSignature(seg []Op) string {
	seqs := make([]int64, 0, 2*len(seg))
	for _, op := range seg {
		seqs = append(seqs, op.CallSeq, op.RetSeq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	rank := make(map[int64]uint64, len(seqs))
	for i, s := range seqs {
		if _, ok := rank[s]; !ok {
			rank[s] = uint64(i)
		}
	}

	var b strings.Builder
	var tmp [2 * binary.MaxVarintLen64]byte
	for _, op := range seg {
		b.WriteString(op.Method)
		b.WriteByte(0)
		for _, a := range op.Args {
			b.WriteString(event.Format(a))
			b.WriteByte(1)
		}
		b.WriteByte(2)
		b.WriteString(event.Format(op.Ret))
		if op.Mutator {
			b.WriteByte(3)
		} else {
			b.WriteByte(4)
		}
		n := binary.PutUvarint(tmp[:], rank[op.CallSeq])
		n += binary.PutUvarint(tmp[n:], rank[op.RetSeq])
		b.Write(tmp[:n])
		b.WriteByte(5)
	}
	return b.String()
}
