package linearize

// P-compositionality (Herlihy & Wing's locality theorem, exploited the way
// Horn & Kroening's P-compositionality paper does): a history over a data
// type whose operations touch disjoint keys/elements is linearizable iff
// each per-key sub-history is. Partitioning turns one search over overlap
// width w into several searches whose widths sum to at most w — and the
// exponential lives in the width, so the split is where most of the
// engine's headroom on map- and set-shaped subjects comes from. The
// per-component witnesses are merged back into a single global
// linearization by repeatedly emitting the component head with the
// smallest call sequence, which is always safe: if some unemitted op b had
// to precede the chosen head a (b returned before a was called), then b's
// own component head h satisfies h.CallSeq <= b.RetSeq < a.CallSeq,
// contradicting a's minimality.

// partition groups op indices into independent components via union-find
// over the key strings sp.Keys assigns. It reports ok=false — partitioning
// impossible — when any op is global (Keys returns ok=false). Ops with an
// empty key set (state-independent, e.g. a daemon's Compress) become
// singleton components.
func partition(ops []Op, keys func(Op) ([]string, bool)) ([][]int, bool) {
	parent := make([]int, 0, len(ops))
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	keyNode := make(map[string]int)
	opNode := make([]int, len(ops)) // -1 for stateless ops
	for i, op := range ops {
		ks, ok := keys(op)
		if !ok {
			return nil, false
		}
		opNode[i] = -1
		for _, k := range ks {
			kn, seen := keyNode[k]
			if !seen {
				kn = len(parent)
				parent = append(parent, kn)
				keyNode[k] = kn
			}
			if opNode[i] < 0 {
				opNode[i] = kn
			} else {
				union(opNode[i], kn)
			}
		}
	}

	groups := make(map[int][]int)
	var comps [][]int
	for i := range ops {
		if opNode[i] < 0 {
			comps = append(comps, []int{i})
			continue
		}
		r := find(opNode[i])
		groups[r] = append(groups[r], i)
	}
	// Deterministic component order: by first op index.
	firsts := make([]int, 0, len(groups))
	for _, g := range groups {
		firsts = append(firsts, g[0])
	}
	sortInts(firsts)
	for _, f := range firsts {
		comps = append(comps, groups[find(opNode[f])])
	}
	return comps, true
}

// mergeWitnesses interleaves per-component linearizations (global op
// indices, each respecting real-time order) into one global witness.
func mergeWitnesses(ops []Op, witnesses [][]int) []int {
	total := 0
	for _, w := range witnesses {
		total += len(w)
	}
	out := make([]int, 0, total)
	heads := make([]int, len(witnesses))
	for len(out) < total {
		best, bestCall := -1, int64(0)
		for c, w := range witnesses {
			if heads[c] >= len(w) {
				continue
			}
			call := ops[w[heads[c]]].CallSeq
			if best < 0 || call < bestCall {
				best, bestCall = c, call
			}
		}
		out = append(out, witnesses[best][heads[best]])
		heads[best]++
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}
