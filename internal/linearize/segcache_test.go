package linearize

import (
	"math/rand"
	"regexp"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/spec"
)

// costRE matches the search-cost diagnostic inside a violation detail; a
// cache hit legitimately reports fewer configurations searched than the
// cold search it replaced, so parity comparisons blank the figure.
var costRE = regexp.MustCompile(`\d+ configurations searched`)

func normalized(s core.Summary) core.Summary {
	s.FirstViolation = costRE.ReplaceAllString(s.FirstViolation, "N configurations searched")
	return s
}

// TestSegmentCacheVerdictParity pins the cache's one obligation: a warm
// cache must produce byte-identical verdicts to a cold one, on clean and
// violating histories alike, with the brute oracle agreeing throughout.
func TestSegmentCacheVerdictParity(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	histories := make([][]event.Entry, 0, 40)
	for i := 0; i < 40; i++ {
		histories = append(histories, randomMultisetHistory(r, 3, 4))
	}

	ResetSegmentCache()
	cold := make([]core.Summary, len(histories))
	for i, h := range histories {
		cold[i] = normalized(CheckEntries(h, MultisetSpec(), Options{MaxStates: 1 << 22}).Summary())
		br := CheckBruteTrace(h, spec.NewMultiset(), NewMultisetModel(), 1<<22)
		if !br.Aborted && br.Linearizable == (cold[i].TotalViolations > 0) {
			t.Fatalf("history %d: brute (lin=%v) disagrees with cold streaming verdict %+v",
				i, br.Linearizable, cold[i])
		}
	}
	if st := SegmentCacheStats(); st.Lookups == 0 {
		t.Fatal("interval closures never consulted the cache")
	}

	// Warm pass: same histories, now answered (at least partly) from the
	// cache — every summary must be identical to its cold twin.
	before := SegmentCacheStats()
	for i, h := range histories {
		warm := normalized(CheckEntries(h, MultisetSpec(), Options{MaxStates: 1 << 22}).Summary())
		if warm != cold[i] {
			t.Fatalf("history %d verdict changed under a warm cache:\ncold: %+v\nwarm: %+v", i, cold[i], warm)
		}
	}
	after := SegmentCacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("warm pass never hit the cache: %+v -> %+v", before, after)
	}
}

// TestSegmentCachePositionIndependence pins the rank-normalized
// signature: the same (start state, segment shape) pair recurring later
// in one history is answered from the cache despite different absolute
// sequence numbers.
func TestSegmentCachePositionIndependence(t *testing.T) {
	ResetSegmentCache()
	var b traceBuilder
	const rounds = 12
	for i := 0; i < rounds; i++ {
		// Insert(1)/Delete(1) returns the model to the initial state, so
		// every round reproduces the same two (state, segment) pairs.
		b.call(1, "Insert", 1)
		b.ret(1, "Insert", true)
		b.call(1, "Delete", 1)
		b.ret(1, "Delete", true)
	}
	rep := CheckEntries(b.entries, MultisetSpec(), Options{})
	if !rep.Ok() {
		t.Fatalf("clean alternating trace flagged: %s", rep)
	}
	st := SegmentCacheStats()
	// 2*rounds closures, only two distinct searches: everything after the
	// first round hits.
	if st.Entries != 2 {
		t.Fatalf("distinct cached searches = %d, want 2 (%+v)", st.Entries, st)
	}
	if want := int64(2*rounds - 2); st.Hits != want {
		t.Fatalf("hits = %d, want %d (%+v)", st.Hits, want, st)
	}
}

// TestSegmentCacheCachesRefutations pins that a definite no-linearization
// result is cached and still refutes on the warm path.
func TestSegmentCacheCachesRefutations(t *testing.T) {
	ResetSegmentCache()
	build := func() []event.Entry {
		var b traceBuilder
		b.call(1, "Insert", 1)
		b.ret(1, "Insert", true)
		b.call(1, "LookUp", 7) // never inserted
		b.ret(1, "LookUp", true)
		return b.entries
	}
	cold := normalized(CheckEntries(build(), MultisetSpec(), Options{}).Summary())
	if cold.TotalViolations == 0 {
		t.Fatal("impossible LookUp accepted cold")
	}
	before := SegmentCacheStats()
	warm := normalized(CheckEntries(build(), MultisetSpec(), Options{}).Summary())
	if warm != cold {
		t.Fatalf("refutation changed under a warm cache:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	if st := SegmentCacheStats(); st.Hits <= before.Hits {
		t.Fatalf("refuting closure never hit the cache: %+v -> %+v", before, st)
	}
}

// TestSegmentSignatureSeparatesOverlap pins that the signature encodes
// the real-time overlap structure, not just the op multiset: sequential
// and overlapped executions of the same two ops must not share a cache
// entry (their reachable end-state sets differ).
func TestSegmentSignatureSeparatesOverlap(t *testing.T) {
	seq := []Op{
		{Method: "Insert", Args: []event.Value{1}, Ret: true, Mutator: true, CallSeq: 1, RetSeq: 2},
		{Method: "Delete", Args: []event.Value{1}, Ret: true, Mutator: true, CallSeq: 3, RetSeq: 4},
	}
	over := []Op{
		{Method: "Insert", Args: []event.Value{1}, Ret: true, Mutator: true, CallSeq: 1, RetSeq: 3},
		{Method: "Delete", Args: []event.Value{1}, Ret: true, Mutator: true, CallSeq: 2, RetSeq: 4},
	}
	if segmentSignature(seq) == segmentSignature(over) {
		t.Fatal("sequential and overlapped segments share a signature")
	}
	// Shifting absolute positions preserves the signature.
	shifted := []Op{
		{Method: "Insert", Args: []event.Value{1}, Ret: true, Mutator: true, CallSeq: 101, RetSeq: 103},
		{Method: "Delete", Args: []event.Value{1}, Ret: true, Mutator: true, CallSeq: 102, RetSeq: 104},
	}
	if segmentSignature(over) != segmentSignature(shifted) {
		t.Fatal("signature depends on absolute sequence numbers")
	}
}
