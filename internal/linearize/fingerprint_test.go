package linearize

import (
	"fmt"
	"testing"

	"repro/internal/event"
)

// The engine's memoization and the streaming frontier both treat equal
// fingerprints as equal states (memo entries compare the done-set exactly,
// but distinct states folding to one fingerprint would still merge frontier
// states and could mask a violation). The Model contract therefore requires
// collision-freedom in practice; these property tests enumerate well over
// 10^5 distinct small states per model — the regime real traces live in —
// and pin zero collisions. If either ever fails, the fingerprints must move
// to a keyed hash (hash/maphash) with explicit collision handling.

// TestMultisetFingerprintCollisionFree enumerates every multiset over
// elements 0..5 with per-element counts 0..6 (7^6 = 117,649 distinct
// states) and requires all fingerprints distinct.
func TestMultisetFingerprintCollisionFree(t *testing.T) {
	const elems = 6
	const maxCount = 6 // counts 0..6 -> 7 choices per element
	seen := make(map[uint64]string, 120_000)
	counts := make([]int, elems)
	total := 0
	for {
		m := NewMultisetModel()
		for x := 0; x < elems; x++ {
			for c := 0; c < counts[x]; c++ {
				next, ok := m.Step(Op{Method: "Insert", Args: []event.Value{x}, Ret: true, Mutator: true})
				if !ok {
					t.Fatalf("insert rejected while enumerating state %v", counts)
				}
				m = next.(*MultisetModel)
			}
		}
		canon := fmt.Sprint(counts)
		fp := m.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: states %s and %s both hash to %#x", prev, canon, fp)
		}
		seen[fp] = canon
		total++
		// Advance the mixed-radix counter.
		i := 0
		for ; i < elems; i++ {
			counts[i]++
			if counts[i] <= maxCount {
				break
			}
			counts[i] = 0
		}
		if i == elems {
			break
		}
	}
	if total < 100_000 {
		t.Fatalf("only %d states enumerated; the property needs >= 10^5", total)
	}
	t.Logf("%d distinct multiset states, zero fingerprint collisions", total)
}

// TestKVFingerprintCollisionFree enumerates every partial map from keys
// 0..5 to values 1..6 (absent = 0; 7^6 = 117,649 distinct states) and
// requires all fingerprints distinct.
func TestKVFingerprintCollisionFree(t *testing.T) {
	const keys = 6
	const vals = 6 // 0 = absent, 1..6 present
	seen := make(map[uint64]string, 120_000)
	state := make([]int, keys)
	total := 0
	for {
		m := NewKVModel()
		for k := 0; k < keys; k++ {
			if state[k] == 0 {
				continue
			}
			next, ok := m.Step(Op{Method: "Insert", Args: []event.Value{k, state[k]}, Ret: nil, Mutator: true})
			if !ok {
				t.Fatalf("insert rejected while enumerating state %v", state)
			}
			m = next.(*KVModel)
		}
		canon := fmt.Sprint(state)
		fp := m.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: states %s and %s both hash to %#x", prev, canon, fp)
		}
		seen[fp] = canon
		total++
		i := 0
		for ; i < keys; i++ {
			state[i]++
			if state[i] <= vals {
				break
			}
			state[i] = 0
		}
		if i == keys {
			break
		}
	}
	if total < 100_000 {
		t.Fatalf("only %d states enumerated; the property needs >= 10^5", total)
	}
	t.Logf("%d distinct kv states, zero fingerprint collisions", total)
}
