package jvector

import (
	"fmt"
	"strconv"

	"repro/internal/event"
	"repro/internal/view"
)

// Replayer reconstructs the vector contents from the logged writes and
// maintains viewI in the same canonical form as the Vector specification's
// viewS: "len" plus "i:<index>" entries. Updates touch only the indices the
// operation moved, so maintenance is proportional to the shift distance.
//
// Write operations:
//
//	"vec-add" x      append
//	"vec-ins" i x    insert at i
//	"vec-rm" i       remove at i
//	"vec-clear"      remove everything
type Replayer struct {
	elems []int
	table *view.Table
}

// NewReplayer returns an empty replica.
func NewReplayer() *Replayer {
	r := &Replayer{}
	r.Reset()
	return r
}

// Reset implements core.Replayer.
func (r *Replayer) Reset() {
	r.elems = nil
	r.table = view.NewTable()
	r.table.Set("len", "0")
}

// View implements core.Replayer.
func (r *Replayer) View() *view.Table { return r.table }

func (r *Replayer) setIndex(i int) {
	r.table.Set("i:"+strconv.Itoa(i), strconv.Itoa(r.elems[i]))
}

func (r *Replayer) refreshFrom(i, oldLen int) {
	for ; i < len(r.elems); i++ {
		r.setIndex(i)
	}
	for j := len(r.elems); j < oldLen; j++ {
		r.table.Delete("i:" + strconv.Itoa(j))
	}
	r.table.Set("len", strconv.Itoa(len(r.elems)))
}

// Apply implements core.Replayer.
func (r *Replayer) Apply(op string, args []event.Value) error {
	switch op {
	case "vec-add":
		if len(args) != 1 {
			return fmt.Errorf("jvector replay: vec-add wants one element, got %v", args)
		}
		x, ok := event.Int(args[0])
		if !ok {
			return fmt.Errorf("jvector replay: vec-add non-integer arg %v", args)
		}
		r.elems = append(r.elems, x)
		r.refreshFrom(len(r.elems)-1, len(r.elems)-1)
		return nil

	case "vec-ins":
		if len(args) != 2 {
			return fmt.Errorf("jvector replay: vec-ins wants index and element, got %v", args)
		}
		i, ok1 := event.Int(args[0])
		x, ok2 := event.Int(args[1])
		if !ok1 || !ok2 {
			return fmt.Errorf("jvector replay: vec-ins non-integer args %v", args)
		}
		if i < 0 || i > len(r.elems) {
			return fmt.Errorf("jvector replay: vec-ins index %d out of range (len %d)", i, len(r.elems))
		}
		r.elems = append(r.elems, 0)
		copy(r.elems[i+1:], r.elems[i:])
		r.elems[i] = x
		r.refreshFrom(i, len(r.elems)-1)
		return nil

	case "vec-rm":
		if len(args) != 1 {
			return fmt.Errorf("jvector replay: vec-rm wants index, got %v", args)
		}
		i, ok := event.Int(args[0])
		if !ok {
			return fmt.Errorf("jvector replay: vec-rm non-integer arg %v", args)
		}
		if i < 0 || i >= len(r.elems) {
			return fmt.Errorf("jvector replay: vec-rm index %d out of range (len %d)", i, len(r.elems))
		}
		oldLen := len(r.elems)
		r.elems = append(r.elems[:i], r.elems[i+1:]...)
		r.refreshFrom(i, oldLen)
		return nil

	case "vec-clear":
		oldLen := len(r.elems)
		r.elems = r.elems[:0]
		r.refreshFrom(0, oldLen)
		return nil
	}
	return fmt.Errorf("jvector replay: unknown op %q", op)
}

// Invariants implements core.Replayer; the sequence has no additional
// internal invariants beyond its view.
func (r *Replayer) Invariants() error { return nil }

// Snapshot exposes the reconstructed contents, for tests.
func (r *Replayer) Snapshot() []int {
	out := make([]int, len(r.elems))
	copy(out, r.elems)
	return out
}
