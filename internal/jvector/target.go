package jvector

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// Target adapts the Vector to the random test harness (Section 7.1). The
// mix leans on LastIndexOf racing the shrinking operations, the combination
// that triggers the known bug.
func Target(bug Bug) harness.Target {
	return harness.Target{
		Name: "java.util.Vector",
		New: func(log *vyrd.Log) harness.Instance {
			v := New(bug)
			return harness.Instance{
				Methods: []harness.Method{
					{Name: "AddElement", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						v.AddElement(p, pick())
					}},
					{Name: "InsertElementAt", Weight: 5, Run: func(p *vyrd.Probe, rng *rand.Rand, pick func() int) {
						v.InsertElementAt(p, pick(), rng.Intn(8))
					}},
					{Name: "RemoveElementAt", Weight: 10, Run: func(p *vyrd.Probe, rng *rand.Rand, _ func() int) {
						v.RemoveElementAt(p, rng.Intn(8))
					}},
					{Name: "RemoveAllElements", Weight: 5, Run: func(p *vyrd.Probe, _ *rand.Rand, _ func() int) {
						v.RemoveAllElements(p)
					}},
					{Name: "TrimToSize", Weight: 5, Run: func(p *vyrd.Probe, _ *rand.Rand, _ func() int) {
						v.TrimToSize(p)
					}},
					{Name: "Size", Weight: 5, Run: func(p *vyrd.Probe, _ *rand.Rand, _ func() int) {
						v.Size(p)
					}},
					{Name: "ElementAt", Weight: 10, Run: func(p *vyrd.Probe, rng *rand.Rand, _ func() int) {
						v.ElementAt(p, rng.Intn(12))
					}},
					{Name: "LastIndexOf", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						v.LastIndexOf(p, pick())
					}},
				},
			}
		},
		NewSpec:     func() core.Spec { return spec.NewVector() },
		NewReplayer: func() core.Replayer { return NewReplayer() },
	}
}
