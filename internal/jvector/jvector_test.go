package jvector

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkLog(t *testing.T, log *vyrd.Log, mode core.Mode) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(NewReplayer()), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewVector(), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestSequentialOperations(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	v := New(BugNone)
	v.AddElement(p, 10)
	v.AddElement(p, 20)
	v.AddElement(p, 10)
	if n := v.Size(p); n != 3 {
		t.Fatalf("size %d", n)
	}
	if x, err := v.ElementAt(p, 1); err != nil || x != 20 {
		t.Fatalf("ElementAt(1) = %d, %v", x, err)
	}
	if _, err := v.ElementAt(p, 9); err == nil {
		t.Fatal("ElementAt out of range succeeded")
	}
	if idx, err := v.LastIndexOf(p, 10); err != nil || idx != 2 {
		t.Fatalf("LastIndexOf(10) = %d, %v", idx, err)
	}
	if idx, _ := v.LastIndexOf(p, 99); idx != -1 {
		t.Fatalf("LastIndexOf(absent) = %d", idx)
	}
	if err := v.InsertElementAt(p, 15, 1); err != nil {
		t.Fatal(err)
	}
	if err := v.InsertElementAt(p, 9, 100); err == nil {
		t.Fatal("out-of-range insert succeeded")
	}
	if err := v.RemoveElementAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.RemoveElementAt(p, 50); err == nil {
		t.Fatal("out-of-range remove succeeded")
	}
	v.TrimToSize(p)
	v.RemoveAllElements(p)
	if n := v.Size(p); n != 0 {
		t.Fatalf("size after clear: %d", n)
	}
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

func TestGrowth(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	v := New(BugNone)
	for i := 0; i < 100; i++ {
		v.AddElement(p, i)
	}
	for i := 0; i < 100; i++ {
		if x, err := v.ElementAt(p, i); err != nil || x != i {
			t.Fatalf("ElementAt(%d) = %d, %v", i, x, err)
		}
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

// TestBugDeterministic forces the known lastIndexOf race: the count is read
// before the lock; RemoveAllElements runs in the window; the scan then
// starts beyond the bounds and terminates exceptionally.
func TestBugDeterministic(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelIO)
	v := New(BugLastIndexOf)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	for i := 0; i < 5; i++ {
		v.AddElement(p1, i)
	}

	inWindow := make(chan struct{})
	cleared := make(chan struct{})
	var once sync.Once
	v.RaceWindow = func(staleCount int) {
		once.Do(func() {
			close(inWindow)
			<-cleared
		})
	}

	type result struct {
		idx int
		err error
	}
	done := make(chan result)
	go func() {
		idx, err := v.LastIndexOf(p2, 3)
		done <- result{idx, err}
	}()
	<-inWindow
	v.RemoveAllElements(p1) // shrink while LastIndexOf holds the stale count
	close(cleared)
	r := <-done
	if r.err == nil {
		t.Fatalf("expected an exceptional termination, got index %d", r.idx)
	}
	log.Close()

	rep := checkLog(t, log, vyrd.ModeIO)
	if rep.Ok() {
		t.Fatalf("I/O refinement missed the exceptional LastIndexOf:\n%s", rep)
	}
	if rep.First().Kind != vyrd.ViolationObserver {
		t.Fatalf("expected an observer violation, got %v", rep.First())
	}
}

// TestObserverBugViewParity is the Section 7.5 observation: the bug lives
// in an observer and does not corrupt state, so view refinement detects it
// at exactly the same point as I/O refinement.
func TestObserverBugViewParity(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	v := New(BugLastIndexOf)
	p1 := log.NewProbe()
	p2 := log.NewProbe()
	for i := 0; i < 5; i++ {
		v.AddElement(p1, i)
	}
	inWindow := make(chan struct{})
	cleared := make(chan struct{})
	var once sync.Once
	v.RaceWindow = func(int) {
		once.Do(func() {
			close(inWindow)
			<-cleared
		})
	}
	done := make(chan error)
	go func() {
		_, err := v.LastIndexOf(p2, 3)
		done <- err
	}()
	<-inWindow
	v.RemoveAllElements(p1)
	close(cleared)
	if err := <-done; err == nil {
		t.Fatal("bug did not trigger")
	}
	log.Close()

	ioRep := checkLog(t, log, vyrd.ModeIO)
	viewRep := checkLog(t, log, vyrd.ModeView)
	if ioRep.Ok() || viewRep.Ok() {
		t.Fatalf("bug missed: io=%v view=%v", ioRep.Ok(), viewRep.Ok())
	}
	if ioRep.First().MethodsCompleted != viewRep.First().MethodsCompleted {
		t.Fatalf("view should be no better than I/O for an observer bug: io=%d view=%d",
			ioRep.First().MethodsCompleted, viewRep.First().MethodsCompleted)
	}
	if ioRep.First().Kind != vyrd.ViolationObserver || viewRep.First().Kind != vyrd.ViolationObserver {
		t.Fatalf("kinds: io=%v view=%v", ioRep.First().Kind, viewRep.First().Kind)
	}
}

func TestReplayerMatchesImplementation(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	v := New(BugNone)
	v.AddElement(p, 1)
	v.AddElement(p, 2)
	v.InsertElementAt(p, 9, 1)
	v.RemoveElementAt(p, 0)
	v.AddElement(p, 7)
	log.Close()

	r := NewReplayer()
	for _, e := range log.Snapshot() {
		if e.Kind == event.KindWrite {
			if err := r.Apply(e.Method, e.Args); err != nil {
				t.Fatal(err)
			}
		}
		if e.WOp != "" {
			if err := r.Apply(e.WOp, e.WArgs); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := r.Snapshot()
	want := v.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("replica %v, impl %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica %v, impl %v", got, want)
		}
	}
}

func TestReplayerRejectsMalformed(t *testing.T) {
	r := NewReplayer()
	bad := []struct {
		op   string
		args []event.Value
	}{
		{"vec-add", nil},
		{"vec-ins", []event.Value{5, 1}}, // index out of range
		{"vec-rm", []event.Value{0}},     // empty
		{"nope", nil},
	}
	for _, c := range bad {
		if err := r.Apply(c.op, c.args); err == nil {
			t.Fatalf("accepted %s%v", c.op, c.args)
		}
	}
}

func TestConcurrentCorrect(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	v := New(BugNone)
	var wg sync.WaitGroup
	for th := 0; th < 6; th++ {
		wg.Add(1)
		p := log.NewProbe()
		go func(seed int) {
			defer wg.Done()
			x := seed*31 + 1
			for i := 0; i < 250; i++ {
				x = (x*1103515245 + 12345) & 0x7fffffff
				switch x % 6 {
				case 0, 1:
					v.AddElement(p, x%50)
				case 2:
					v.RemoveElementAt(p, x%10)
				case 3:
					v.LastIndexOf(p, x%50)
				case 4:
					v.ElementAt(p, x%10)
				case 5:
					v.Size(p)
				}
			}
		}(th)
	}
	wg.Wait()
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("false positive, %v:\n%s", mode, rep)
		}
	}
}
