// Package jvector reimplements the subset of java.util.Vector the paper
// checks (Section 7.4.1): a growable synchronized sequence backed by an
// explicit element array and element count, including the previously
// reported concurrency error in lastIndexOf.
//
// The injected bug is the one named in Table 1 — "Taking length
// non-atomically in lastIndexOf()": lastIndexOf(x) reads the element count
// without holding the lock and then scans from that stale index; if another
// thread shrinks the vector in between, the scan starts beyond the current
// bounds and the method terminates exceptionally (java.util.Vector throws
// ArrayIndexOutOfBoundsException), which the specification does not permit
// for an observer. Because the bug lives in an observer method and does not
// corrupt the data structure state, view refinement is no better at
// detecting it than I/O refinement (Section 7.5) — the experiment this
// subject exists to demonstrate.
package jvector

import (
	"runtime"
	"sync"

	"repro/internal/event"
	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation.
	BugNone Bug = iota
	// BugLastIndexOf reads the element count without synchronization in
	// LastIndexOf (Table 1: "Taking length non-atomically in
	// lastIndexOf()").
	BugLastIndexOf
)

// Vector is the synchronized growable sequence. All public methods take the
// calling goroutine's probe.
type Vector struct {
	mu    sync.Mutex
	data  []int
	count int
	bug   Bug

	// RaceWindow, when non-nil, runs in the buggy LastIndexOf between the
	// unsynchronized count read and the lock acquisition.
	RaceWindow func(staleCount int)
}

// New returns an empty vector.
func New(bug Bug) *Vector {
	return &Vector{data: make([]int, 8), bug: bug}
}

func (v *Vector) ensureCapacity(n int) {
	if n <= len(v.data) {
		return
	}
	grown := make([]int, max(n, 2*len(v.data)))
	copy(grown, v.data[:v.count])
	v.data = grown
}

// AddElement appends x.
func (v *Vector) AddElement(p *vyrd.Probe, x int) {
	inv := p.Call("AddElement", x)
	v.mu.Lock()
	v.ensureCapacity(v.count + 1)
	v.data[v.count] = x
	v.count++
	inv.CommitWrite("appended", "vec-add", x)
	v.mu.Unlock()
	inv.Return(nil)
}

// InsertElementAt inserts x at index i, shifting later elements right. An
// out-of-range index terminates exceptionally, as in Java.
func (v *Vector) InsertElementAt(p *vyrd.Probe, x, i int) error {
	inv := p.Call("InsertElementAt", x, i)
	v.mu.Lock()
	if i < 0 || i > v.count {
		inv.Commit("out-of-range")
		v.mu.Unlock()
		exc := event.Exceptional{Reason: "index out of range"}
		inv.Return(exc)
		return exc
	}
	v.ensureCapacity(v.count + 1)
	copy(v.data[i+1:v.count+1], v.data[i:v.count])
	v.data[i] = x
	v.count++
	inv.CommitWrite("inserted", "vec-ins", i, x)
	v.mu.Unlock()
	inv.Return(nil)
	return nil
}

// RemoveElementAt removes the element at index i, shifting later elements
// left. An out-of-range index terminates exceptionally.
func (v *Vector) RemoveElementAt(p *vyrd.Probe, i int) error {
	inv := p.Call("RemoveElementAt", i)
	v.mu.Lock()
	if i < 0 || i >= v.count {
		inv.Commit("out-of-range")
		v.mu.Unlock()
		exc := event.Exceptional{Reason: "index out of range"}
		inv.Return(exc)
		return exc
	}
	copy(v.data[i:v.count-1], v.data[i+1:v.count])
	v.count--
	inv.CommitWrite("removed", "vec-rm", i)
	v.mu.Unlock()
	inv.Return(nil)
	return nil
}

// RemoveAllElements clears the vector.
func (v *Vector) RemoveAllElements(p *vyrd.Probe) {
	inv := p.Call("RemoveAllElements")
	v.mu.Lock()
	v.count = 0
	inv.CommitWrite("cleared", "vec-clear")
	v.mu.Unlock()
	inv.Return(nil)
}

// TrimToSize shrinks the backing array to the element count. The abstract
// state is unchanged; the commit carries no write.
func (v *Vector) TrimToSize(p *vyrd.Probe) {
	inv := p.Call("TrimToSize")
	v.mu.Lock()
	trimmed := make([]int, v.count)
	copy(trimmed, v.data[:v.count])
	v.data = trimmed
	inv.Commit("trimmed")
	v.mu.Unlock()
	inv.Return(nil)
}

// Size reports the element count (observer).
func (v *Vector) Size(p *vyrd.Probe) int {
	inv := p.Call("Size")
	v.mu.Lock()
	n := v.count
	v.mu.Unlock()
	inv.Return(n)
	return n
}

// ElementAt returns the element at index i, terminating exceptionally when
// out of range (observer).
func (v *Vector) ElementAt(p *vyrd.Probe, i int) (int, error) {
	inv := p.Call("ElementAt", i)
	v.mu.Lock()
	if i < 0 || i >= v.count {
		v.mu.Unlock()
		exc := event.Exceptional{Reason: "index out of range"}
		inv.Return(exc)
		return 0, exc
	}
	x := v.data[i]
	v.mu.Unlock()
	inv.Return(x)
	return x, nil
}

// LastIndexOf returns the highest index holding x, or -1 (observer). The
// correct version reads the count under the lock; the buggy version reads
// it before acquiring the lock and, as in java.util.Vector, terminates
// exceptionally when the stale index is beyond the current bounds.
func (v *Vector) LastIndexOf(p *vyrd.Probe, x int) (int, error) {
	inv := p.Call("LastIndexOf", x)
	var start int
	if v.bug == BugLastIndexOf {
		start = v.count - 1 // BUG: unsynchronized read of the element count
		if v.RaceWindow != nil {
			v.RaceWindow(start + 1)
		} else {
			runtime.Gosched() // model preemption in the race window
		}
		p.Yield() // controlled-scheduler preemption point inside the race window
		v.mu.Lock()
		if start >= v.count {
			// java.util.Vector.lastIndexOf(Object, int) throws when the
			// start index is at or beyond the element count.
			v.mu.Unlock()
			exc := event.Exceptional{Reason: "array index out of bounds"}
			inv.Return(exc)
			return 0, exc
		}
	} else {
		v.mu.Lock()
		start = v.count - 1
	}
	idx := -1
	for i := start; i >= 0; i-- {
		if v.data[i] == x {
			idx = i
			break
		}
	}
	v.mu.Unlock()
	inv.Return(idx)
	return idx, nil
}

// Snapshot returns the current contents; for quiesced tests only.
func (v *Vector) Snapshot() []int {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]int, v.count)
	copy(out, v.data[:v.count])
	return out
}
