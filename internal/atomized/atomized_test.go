package atomized

import (
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/multiset"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func TestAtomizedMultisetBasicTransitions(t *testing.T) {
	s := MultisetSpec(8)
	if err := s.ApplyMutator("Insert", []event.Value{3}, true); err != nil {
		t.Fatal(err)
	}
	if !s.CheckObserver("LookUp", []event.Value{3}, true) {
		t.Fatal("LookUp(3) -> true rejected")
	}
	if err := s.ApplyMutator("InsertPair", []event.Value{4, 5}, true); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyMutator("Delete", []event.Value{4}, true); err != nil {
		t.Fatal(err)
	}
	if s.CheckObserver("LookUp", []event.Value{4}, true) {
		t.Fatal("deleted element still visible")
	}
	// Failure terminations leave the state unchanged.
	h := s.View().Hash()
	if err := s.ApplyMutator("Insert", []event.Value{9}, false); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyMutator("InsertPair", []event.Value{9, 9}, event.Exceptional{Reason: "x"}); err != nil {
		t.Fatal(err)
	}
	if s.View().Hash() != h {
		t.Fatal("failed operations changed the atomized state")
	}
}

func TestAtomizedRejectsImpossibleTransitions(t *testing.T) {
	s := MultisetSpec(2) // capacity 2
	if err := s.ApplyMutator("Delete", []event.Value{7}, true); err == nil {
		t.Fatal("Delete(absent) -> true accepted")
	}
	// Fill the capacity; a successful insert beyond it is impossible for
	// the atomized implementation.
	mustOK(t, s.ApplyMutator("Insert", []event.Value{1}, true))
	mustOK(t, s.ApplyMutator("Insert", []event.Value{2}, true))
	if err := s.ApplyMutator("Insert", []event.Value{3}, true); err == nil {
		t.Fatal("insert beyond the atomized capacity accepted")
	}
	// Delete(x) -> false is always permitted (see spec.Multiset).
	mustOK(t, s.ApplyMutator("Delete", []event.Value{1}, false))
}

func TestAtomizedReset(t *testing.T) {
	s := MultisetSpec(4)
	mustOK(t, s.ApplyMutator("Insert", []event.Value{1}, true))
	s.Reset()
	if s.CheckObserver("LookUp", []event.Value{1}, true) {
		t.Fatal("reset did not clear")
	}
	if s.View().Hash() != 0 {
		t.Fatal("view not cleared")
	}
}

// TestAtomizedAgreesWithHandWrittenSpec: on the same correct concurrent
// traces, the atomized implementation-as-spec and the hand-written
// specification reach the same verdict (Section 4.4's decomposition).
func TestAtomizedAgreesWithHandWrittenSpec(t *testing.T) {
	target := multiset.Target(32, multiset.BugNone)
	for seed := int64(1); seed <= 3; seed++ {
		res := harness.Run(target, harness.Config{
			Threads: 6, OpsPerThread: 200, KeyPool: 16, Shrink: true,
			Seed: seed, Level: vyrd.LevelView,
		})
		entries := res.Log.Snapshot()

		handRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(),
			vyrd.WithReplayer(multiset.NewReplayer()))
		if err != nil {
			t.Fatal(err)
		}
		atomRep, err := vyrd.CheckEntries(entries, MultisetSpec(32),
			vyrd.WithReplayer(multiset.NewReplayer()))
		if err != nil {
			t.Fatal(err)
		}
		if handRep.Ok() != atomRep.Ok() {
			t.Fatalf("seed %d: verdicts differ: hand=%v atomized=%v\n%s\n%s",
				seed, handRep.Ok(), atomRep.Ok(), handRep, atomRep)
		}
		if !handRep.Ok() {
			t.Fatalf("seed %d: correct run flagged:\n%s", seed, handRep)
		}
	}
}

// TestAtomizedDetectsBuggyTraces: the atomized spec catches the FindSlot
// bug on traces the hand-written spec also flags.
func TestAtomizedDetectsBuggyTraces(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	target := multiset.Target(16, multiset.BugFindSlotAcquire)
	detected := false
	for seed := int64(1); seed <= 30 && !detected; seed++ {
		res := harness.Run(target, harness.Config{
			Threads: 8, OpsPerThread: 300, KeyPool: 8, Shrink: true,
			Seed: seed, Level: vyrd.LevelView,
		})
		rep, err := vyrd.CheckEntries(res.Log.Snapshot(), MultisetSpec(16),
			vyrd.WithReplayer(multiset.NewReplayer()), vyrd.WithFailFast(true))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			detected = true
		}
	}
	if !detected {
		t.Fatal("atomized spec never detected the injected bug")
	}
}

// TestWrapSerializes: the wrapper is safe for a Sequential shared across
// goroutines (defensive serialization).
func TestWrapSerializes(t *testing.T) {
	s := MultisetSpec(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.ApplyMutator("Insert", []event.Value{g*100 + i}, true)
				s.CheckObserver("LookUp", []event.Value{g*100 + i}, true)
			}
		}(g)
	}
	wg.Wait()
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
