// Package atomized implements Section 4.4 of the paper: when a separate
// specification does not exist, an "atomized" interpretation of the
// implementation itself — every method executed to completion under a
// global lock, with the observed return value supplied as an argument —
// serves as the specification for refinement checking.
//
// Wrap adapts any Sequential (a single-threaded re-interpretation of the
// data structure) into a core.Spec. The global lock of the paper's
// construction is implicit here: the checker drives the specification from
// a single verification goroutine, so each Apply call is method-atomic by
// construction; Wrap still serializes defensively so a Sequential shared
// across checkers stays safe.
package atomized

import (
	"sync"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/view"
)

// Sequential is a non-concurrent interpretation of a data structure. It
// receives the return value observed in the concurrent execution and must
// either perform the corresponding atomic transition or reject it.
type Sequential interface {
	// Apply executes mutator method atomically with the observed return
	// value; it rejects impossible transitions with a non-nil error and
	// must leave the state unchanged in that case.
	Apply(method string, args []event.Value, ret event.Value) error
	// Check reports whether ret is a permitted observer result at the
	// current state.
	Check(method string, args []event.Value, ret event.Value) bool
	// IsMutator classifies methods.
	IsMutator(method string) bool
	// View returns the canonical digest of the current abstract contents,
	// or nil when the atomized interpretation does not support views.
	View() *view.Table
	// Reset re-initializes the state.
	Reset()
}

// Wrap turns a Sequential into a core.Spec.
func Wrap(s Sequential) core.Spec { return &atomizedSpec{seq: s} }

type atomizedSpec struct {
	mu  sync.Mutex
	seq Sequential
}

var _ core.Spec = (*atomizedSpec)(nil)

func (a *atomizedSpec) ApplyMutator(method string, args []event.Value, ret event.Value) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq.Apply(method, args, ret)
}

func (a *atomizedSpec) CheckObserver(method string, args []event.Value, ret event.Value) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq.Check(method, args, ret)
}

func (a *atomizedSpec) IsMutator(method string) bool { return a.seq.IsMutator(method) }

func (a *atomizedSpec) View() *view.Table {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq.View()
}

func (a *atomizedSpec) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq.Reset()
}
