package atomized

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/multiset"
	"repro/internal/spec"
	"repro/internal/view"
)

// MultisetSpec returns an atomized interpretation of the array-based
// multiset implementation itself (internal/multiset run single-threaded
// with a nil probe), usable as the specification for checking the
// concurrent multiset — the Section 4.4 construction where the same code
// serves as both implementation and specification. capacity is the slot
// capacity of the sequential instance.
func MultisetSpec(capacity int) core.Spec {
	s := &seqMultiset{capacity: capacity}
	s.Reset()
	return Wrap(s)
}

// seqMultiset drives a multiset.Multiset sequentially. The view table is
// maintained alongside, since the implementation exposes only its concrete
// slot state.
type seqMultiset struct {
	capacity int
	impl     *multiset.Multiset
	table    *view.Table
	counts   map[int]int
}

func (s *seqMultiset) Reset() {
	s.impl = multiset.New(s.capacity, multiset.BugNone)
	s.table = view.NewTable()
	s.counts = make(map[int]int)
}

func (s *seqMultiset) View() *view.Table { return s.table }

func (s *seqMultiset) IsMutator(method string) bool {
	return method != "LookUp"
}

// spaceE is the view key family of multiset elements, shared by name with
// the concurrent multiset's replayer view.
var spaceE = view.NewSpace("e")

func (s *seqMultiset) bump(x, delta int) {
	n := s.counts[x] + delta
	if n <= 0 {
		delete(s.counts, x)
		s.table.DeleteInt(spaceE, int64(x))
		return
	}
	s.counts[x] = n
	s.table.SetInt(spaceE, int64(x), int64(n))
}

func (s *seqMultiset) Apply(method string, args []event.Value, ret event.Value) error {
	fail := func(why string) error {
		return fmt.Errorf("atomized multiset: %s%v -> %v: %s", method, args, ret, why)
	}
	success := func() (bool, error) {
		if event.IsExceptional(ret) {
			return false, nil
		}
		b, ok := ret.(bool)
		if !ok {
			return false, fail("return value must be bool or exceptional")
		}
		return b, nil
	}

	switch method {
	case "Insert":
		if len(args) != 1 {
			return fail("expected one argument")
		}
		x, ok := event.Int(args[0])
		if !ok {
			return fail("non-integer argument")
		}
		want, err := success()
		if err != nil {
			return err
		}
		if !want {
			return nil // unsuccessful terminations leave the state unchanged
		}
		if !s.impl.Insert(nil, x) {
			return fail("the atomized implementation cannot insert (capacity exhausted)")
		}
		s.bump(x, 1)
		return nil

	case "InsertPair":
		if len(args) != 2 {
			return fail("expected two arguments")
		}
		x, okx := event.Int(args[0])
		y, oky := event.Int(args[1])
		if !okx || !oky {
			return fail("non-integer arguments")
		}
		want, err := success()
		if err != nil {
			return err
		}
		if !want {
			return nil
		}
		if !s.impl.InsertPair(nil, x, y) {
			return fail("the atomized implementation cannot insert the pair")
		}
		s.bump(x, 1)
		s.bump(y, 1)
		return nil

	case "Delete":
		if len(args) != 1 {
			return fail("expected one argument")
		}
		x, ok := event.Int(args[0])
		if !ok {
			return fail("non-integer argument")
		}
		removed, ok := ret.(bool)
		if !ok {
			return fail("return value must be bool")
		}
		if !removed {
			return nil // "not found" is always permitted (see spec.Multiset)
		}
		if !s.impl.Delete(nil, x) {
			return fail("claims removal but the atomized implementation does not contain the element")
		}
		s.bump(x, -1)
		return nil

	case spec.MethodCompress:
		return nil
	}
	return fail("unknown mutator")
}

func (s *seqMultiset) Check(method string, args []event.Value, ret event.Value) bool {
	if method != "LookUp" || len(args) != 1 {
		return false
	}
	x, ok := event.Int(args[0])
	if !ok {
		return false
	}
	found, ok := ret.(bool)
	if !ok {
		return false
	}
	return found == s.impl.LookUp(nil, x)
}
