// Package mstree is the paper's "Multiset-BinaryTree" subject
// (Section 7.4.2): a multiset represented as a binary search tree of
// (element, count) nodes with hand-over-hand (lock-coupling) traversal and
// an internal compression thread that splices out zero-count leaf nodes.
//
// The injected bug is the one named in Table 1 — "Unlocking parent before
// insertion": the buggy Insert releases the parent node's lock before
// linking the freshly created child, so a concurrent insert can link a
// different node under the same child pointer and one of the two inserts is
// silently lost (its node becomes unreachable).
//
// Log-replay vocabulary (see Replayer):
//
//	"node-new" id elt        create an unlinked node with count 1
//	"root" id                install the tree root (0 clears it)
//	"link" parent dir child  set parent's child pointer (dir 0=left 1=right)
//	"unlink" parent dir      clear parent's child pointer
//	"node-count" id delta    adjust a node's count
package mstree

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/spec"
	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation.
	BugNone Bug = iota
	// BugUnlockParent releases the parent lock before linking the new node
	// (Table 1: "Unlocking parent before insertion").
	BugUnlockParent
)

// Dir identifies a child pointer.
const (
	dirLeft  = 0
	dirRight = 1
)

type node struct {
	mu    sync.Mutex
	id    int
	elt   int
	count int
	child [2]*node
}

// Multiset is the BST-based multiset.
type Multiset struct {
	rootMu sync.Mutex // guards the root pointer
	root   *node
	nextID atomic.Int64
	bug    Bug

	// RaceWindow, when non-nil, runs in the buggy Insert between unlocking
	// the parent and linking the new node.
	RaceWindow func(parentID int)
}

// New returns an empty multiset.
func New(bug Bug) *Multiset { return &Multiset{bug: bug} }

func (m *Multiset) newNode(p *vyrd.Probe, elt int) *node {
	n := &node{id: int(m.nextID.Add(1)), elt: elt, count: 1}
	p.Write("node-new", n.id, elt)
	return n
}

// Insert adds one copy of x. It never fails (the tree grows on demand), so
// it always returns true.
func (m *Multiset) Insert(p *vyrd.Probe, x int) bool {
	inv := p.Call("Insert", x)
	m.rootMu.Lock()
	if m.root == nil {
		n := m.newNode(p, x)
		m.root = n
		inv.CommitWrite("new-root", "root", n.id)
		m.rootMu.Unlock()
		inv.Return(true)
		return true
	}
	cur := m.root
	cur.mu.Lock()
	m.rootMu.Unlock()
	for {
		if x == cur.elt {
			cur.count++
			inv.CommitWrite("bump", "node-count", cur.id, 1)
			cur.mu.Unlock()
			inv.Return(true)
			return true
		}
		dir := dirLeft
		if x > cur.elt {
			dir = dirRight
		}
		next := cur.child[dir]
		if next == nil {
			n := m.newNode(p, x)
			if m.bug == BugUnlockParent {
				// BUG: the parent lock is released before the link, so a
				// concurrent insert can install a different node here and
				// this write silently discards it (or is discarded).
				cur.mu.Unlock()
				if m.RaceWindow != nil {
					m.RaceWindow(cur.id)
				} else {
					runtime.Gosched() // model preemption in the race window
				}
				p.Yield() // controlled-scheduler preemption point inside the race window
				cur.child[dir] = n
				inv.CommitWrite("link", "link", cur.id, dir, n.id)
			} else {
				cur.child[dir] = n
				inv.CommitWrite("link", "link", cur.id, dir, n.id)
				cur.mu.Unlock()
			}
			inv.Return(true)
			return true
		}
		next.mu.Lock()
		cur.mu.Unlock()
		cur = next
	}
}

// Delete removes one copy of x if present; false ("not found") is always a
// permitted outcome for the specification.
func (m *Multiset) Delete(p *vyrd.Probe, x int) bool {
	inv := p.Call("Delete", x)
	m.rootMu.Lock()
	cur := m.root
	if cur == nil {
		m.rootMu.Unlock()
		inv.Commit("empty")
		inv.Return(false)
		return false
	}
	cur.mu.Lock()
	m.rootMu.Unlock()
	for {
		if x == cur.elt {
			if cur.count > 0 {
				cur.count--
				inv.CommitWrite("drop", "node-count", cur.id, -1)
				cur.mu.Unlock()
				inv.Return(true)
				return true
			}
			cur.mu.Unlock()
			inv.Commit("tombstone")
			inv.Return(false)
			return false
		}
		dir := dirLeft
		if x > cur.elt {
			dir = dirRight
		}
		next := cur.child[dir]
		if next == nil {
			cur.mu.Unlock()
			inv.Commit("not-found")
			inv.Return(false)
			return false
		}
		next.mu.Lock()
		cur.mu.Unlock()
		cur = next
	}
}

// LookUp reports membership of x (observer).
func (m *Multiset) LookUp(p *vyrd.Probe, x int) bool {
	inv := p.Call("LookUp", x)
	found := false
	m.rootMu.Lock()
	cur := m.root
	if cur != nil {
		cur.mu.Lock()
	}
	m.rootMu.Unlock()
	for cur != nil {
		if x == cur.elt {
			found = cur.count > 0
			cur.mu.Unlock()
			break
		}
		dir := dirLeft
		if x > cur.elt {
			dir = dirRight
		}
		next := cur.child[dir]
		if next == nil {
			cur.mu.Unlock()
			break
		}
		next.mu.Lock()
		cur.mu.Unlock()
		cur = next
	}
	inv.Return(found)
	return found
}

// Compress performs one compression pass: it splices out one zero-count
// leaf node, if it finds one, without modifying the multiset contents
// (Section 7.2.3). It runs as the Compress pseudo-method; the unlink is its
// commit action.
func (m *Multiset) Compress(p *vyrd.Probe) {
	inv := p.Call(spec.MethodCompress)
	m.rootMu.Lock()
	cur := m.root
	if cur == nil {
		m.rootMu.Unlock()
		inv.Commit("empty")
		inv.Return(nil)
		return
	}
	cur.mu.Lock()
	m.rootMu.Unlock()
	// Hand-over-hand search for a zero-count leaf child of cur.
	for {
		for dir := 0; dir < 2; dir++ {
			ch := cur.child[dir]
			if ch == nil {
				continue
			}
			ch.mu.Lock()
			if ch.count == 0 && ch.child[0] == nil && ch.child[1] == nil {
				cur.child[dir] = nil
				inv.CommitWrite("splice", "unlink", cur.id, dir)
				ch.mu.Unlock()
				cur.mu.Unlock()
				inv.Return(nil)
				return
			}
			ch.mu.Unlock()
		}
		// Descend toward the subtree more likely to hold garbage: walk
		// left-to-right deterministically.
		var next *node
		if cur.child[0] != nil {
			next = cur.child[0]
		} else if cur.child[1] != nil {
			next = cur.child[1]
		}
		if next == nil {
			cur.mu.Unlock()
			inv.Commit("nothing")
			inv.Return(nil)
			return
		}
		next.mu.Lock()
		cur.mu.Unlock()
		cur = next
	}
}

// Contents returns the current reachable multiset contents; for quiesced
// tests only.
func (m *Multiset) Contents() map[int]int {
	out := make(map[int]int)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.count > 0 {
			out[n.elt] += n.count
		}
		walk(n.child[0])
		walk(n.child[1])
	}
	m.rootMu.Lock()
	defer m.rootMu.Unlock()
	walk(m.root)
	return out
}
