package mstree

import (
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// Target adapts the Multiset-BinaryTree to the random test harness
// (Section 7.1), including its continuously running compression thread.
func Target(bug Bug) harness.Target {
	return harness.Target{
		Name: "Multiset-BinaryTree",
		New: func(log *vyrd.Log) harness.Instance {
			m := New(bug)
			return harness.Instance{
				Methods: []harness.Method{
					{Name: "Insert", Weight: 35, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						m.Insert(p, pick())
					}},
					{Name: "Delete", Weight: 25, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						m.Delete(p, pick())
					}},
					{Name: "LookUp", Weight: 40, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						m.LookUp(p, pick())
					}},
				},
				WorkerStep: func(p *vyrd.Probe) {
					m.Compress(p)
					runtime.Gosched()
				},
			}
		},
		NewSpec:     func() core.Spec { return spec.NewMultiset() },
		NewReplayer: func() core.Replayer { return NewReplayer() },
	}
}
