package mstree

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkLog(t *testing.T, log *vyrd.Log, mode core.Mode) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(NewReplayer()), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewMultiset(), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestSequentialOperations(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := New(BugNone)
	for _, x := range []int{5, 3, 8, 1, 5} { // note: 5 twice
		if !m.Insert(p, x) {
			t.Fatalf("Insert(%d) failed", x)
		}
	}
	if !m.LookUp(p, 5) || !m.LookUp(p, 1) || m.LookUp(p, 9) {
		t.Fatal("lookup results wrong")
	}
	if !m.Delete(p, 5) || !m.LookUp(p, 5) { // one copy remains
		t.Fatal("multiplicity broken")
	}
	if !m.Delete(p, 5) || m.LookUp(p, 5) {
		t.Fatal("second delete broken")
	}
	if m.Delete(p, 5) {
		t.Fatal("delete of absent element succeeded")
	}
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

func TestCompressSplicesTombstones(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := New(BugNone)
	for _, x := range []int{5, 3, 8, 1, 4, 9} {
		m.Insert(p, x)
	}
	// Delete leaves: 1, 4, 9 become tombstones (count 0).
	for _, x := range []int{1, 4, 9} {
		if !m.Delete(p, x) {
			t.Fatalf("Delete(%d) failed", x)
		}
	}
	wp := log.NewWorkerProbe()
	for i := 0; i < 6; i++ {
		m.Compress(wp)
	}
	contents := m.Contents()
	want := map[int]int{5: 1, 3: 1, 8: 1}
	if len(contents) != len(want) {
		t.Fatalf("contents after compression: %v", contents)
	}
	for k, v := range want {
		if contents[k] != v {
			t.Fatalf("contents[%d] = %d", k, contents[k])
		}
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("compression must not change the view:\n%s", rep)
	}
}

// TestBugDeterministicLostInsert forces the lost-insert interleaving: T2
// pauses between unlocking the parent and linking its node; T1 links a
// different node under the same child pointer; T2 then overwrites it.
func TestBugDeterministicLostInsert(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	m := New(BugUnlockParent)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	if !m.Insert(p1, 50) { // root
		t.Fatal("root insert failed")
	}

	t2Paused := make(chan struct{})
	t1Done := make(chan struct{})
	var once sync.Once
	m.RaceWindow = func(parentID int) {
		once.Do(func() {
			close(t2Paused)
			<-t1Done
		})
	}

	done := make(chan bool)
	go func() { done <- m.Insert(p2, 30) }() // will hang in the window
	<-t2Paused

	m.RaceWindow = func(int) {}
	if !m.Insert(p1, 20) { // T1 links 20 under root's left pointer
		t.Fatal("T1 insert failed")
	}
	close(t1Done) // T2 overwrites root.left with its node for 30: 20 is lost
	if !<-done {
		t.Fatal("T2 insert failed")
	}
	log.Close()

	// The implementation lost 20.
	if _, ok := m.Contents()[20]; ok {
		t.Fatal("interleaving did not lose the insert; test schedule broken")
	}
	rep := checkLog(t, log, vyrd.ModeView)
	if rep.Ok() {
		t.Fatalf("view refinement missed the lost insert:\n%s", rep)
	}
	if rep.First().Kind != vyrd.ViolationView {
		t.Fatalf("expected a view violation, got %v", rep.First())
	}
}

func TestReplayerReachability(t *testing.T) {
	r := NewReplayer()
	apply := func(op string, args ...event.Value) {
		t.Helper()
		if err := r.Apply(op, args); err != nil {
			t.Fatalf("%s%v: %v", op, args, err)
		}
	}
	apply("node-new", 1, 50)
	apply("root", 1)
	apply("node-new", 2, 30)
	apply("link", 1, 0, 2)
	if got := r.Counts(); got[50] != 1 || got[30] != 1 {
		t.Fatalf("counts = %v", got)
	}
	// Overwriting the left child detaches node 2's subtree.
	apply("node-new", 3, 20)
	apply("link", 1, 0, 3)
	if got := r.Counts(); got[30] != 0 || got[20] != 1 {
		t.Fatalf("detach not tracked: %v", got)
	}
	// Unlink removes the contribution.
	apply("unlink", 1, 0)
	if got := r.Counts(); got[20] != 0 {
		t.Fatalf("unlink not tracked: %v", got)
	}
	// Re-linking an entire detached subtree re-adds it.
	apply("link", 1, 0, 2)
	if got := r.Counts(); got[30] != 1 {
		t.Fatalf("re-attach not tracked: %v", got)
	}
}

func TestReplayerSubtreeDetach(t *testing.T) {
	r := NewReplayer()
	apply := func(op string, args ...event.Value) {
		t.Helper()
		if err := r.Apply(op, args); err != nil {
			t.Fatalf("%s%v: %v", op, args, err)
		}
	}
	// Build root(50) -> left 30 -> left 20, then detach 30's subtree: both
	// 30 and 20 leave the view.
	apply("node-new", 1, 50)
	apply("root", 1)
	apply("node-new", 2, 30)
	apply("link", 1, 0, 2)
	apply("node-new", 3, 20)
	apply("link", 2, 0, 3)
	if got := r.Counts(); got[20] != 1 {
		t.Fatalf("setup: %v", got)
	}
	apply("unlink", 1, 0)
	got := r.Counts()
	if got[30] != 0 || got[20] != 0 || got[50] != 1 {
		t.Fatalf("subtree detach: %v", got)
	}
}

func TestReplayerOrderInvariant(t *testing.T) {
	r := NewReplayer()
	if err := r.Apply("node-new", []event.Value{1, 50}); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply("root", []event.Value{1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply("node-new", []event.Value{2, 70}); err != nil {
		t.Fatal(err)
	}
	// Linking 70 as the LEFT child of 50 violates BST order.
	if err := r.Apply("link", []event.Value{1, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Invariants(); err == nil {
		t.Fatal("order violation not reported")
	}
}

func TestReplayerRejectsMalformed(t *testing.T) {
	r := NewReplayer()
	bad := [][]any{
		{"node-new", []event.Value{1}},
		{"link", []event.Value{1, 0, 2}},    // unknown nodes
		{"node-count", []event.Value{9, 1}}, // unknown node
		{"root", []event.Value{9}},          // unknown node
		{"frob", []event.Value{}},
	}
	for _, c := range bad {
		if err := r.Apply(c[0].(string), c[1].([]event.Value)); err == nil {
			t.Fatalf("accepted %v", c)
		}
	}
	// Duplicate node id.
	if err := r.Apply("node-new", []event.Value{1, 5}); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply("node-new", []event.Value{1, 5}); err == nil {
		t.Fatal("duplicate node id accepted")
	}
}

func TestConcurrentCorrectWithCompression(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	m := New(BugNone)
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	wp := log.NewWorkerProbe()
	go func() {
		defer wwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Compress(wp)
			}
		}
	}()
	var wg sync.WaitGroup
	for th := 0; th < 6; th++ {
		wg.Add(1)
		p := log.NewProbe()
		go func(seed int) {
			defer wg.Done()
			x := seed*97 + 13
			for i := 0; i < 300; i++ {
				x = (x*1103515245 + 12345) & 0x7fffffff
				k := x % 10
				switch x % 3 {
				case 0:
					m.Insert(p, k)
				case 1:
					m.Delete(p, k)
				case 2:
					m.LookUp(p, k)
				}
			}
		}(th)
	}
	wg.Wait()
	close(stop)
	wwg.Wait()
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("false positive, %v mode:\n%s", mode, rep)
		}
	}
}
