package mstree

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// Replayer reconstructs the BST from the logged structural writes and
// maintains viewI incrementally: the multiset of elements held by nodes
// *reachable from the root* with positive counts. Reachability is the
// crucial fidelity: the "unlocking parent before insertion" bug loses an
// insert by overwriting a child pointer, which detaches the earlier node —
// a replica that merely counted node-count writes would never see the loss.
//
// Attaching or detaching a subtree walks only that subtree, so maintenance
// cost is proportional to the size of the structural change (Section 6.4's
// incremental computation), not to the tree.
type Replayer struct {
	nodes  map[int]*rnode
	rootID int
	counts map[int]int
	table  *view.Table
	// orderViolations counts links that break the BST ordering locally
	// (child on the wrong side of its parent), an invariant of the tree.
	orderViolations int
}

type rnode struct {
	id        int
	elt       int
	count     int
	child     [2]int
	reachable bool
}

// NewReplayer returns an empty replica.
func NewReplayer() *Replayer {
	r := &Replayer{}
	r.Reset()
	return r
}

// Reset implements core.Replayer.
func (r *Replayer) Reset() {
	r.nodes = make(map[int]*rnode)
	r.rootID = 0
	r.counts = make(map[int]int)
	r.table = view.NewTable()
	r.orderViolations = 0
}

// View implements core.Replayer. Keys are "e:<element>"; values are
// multiplicities, matching the multiset specification's viewS.
func (r *Replayer) View() *view.Table { return r.table }

// spaceE is the view key family of multiset elements, shared by name with
// the multiset specification so both views land in the same key universe.
var spaceE = view.NewSpace("e")

func (r *Replayer) countDelta(elt, delta int) {
	if delta == 0 {
		return
	}
	n := r.counts[elt] + delta
	if n <= 0 {
		delete(r.counts, elt)
		r.table.DeleteInt(spaceE, int64(elt))
		return
	}
	r.counts[elt] = n
	r.table.SetInt(spaceE, int64(elt), int64(n))
}

// setReachable walks the subtree rooted at id, marking reachability and
// adjusting the view contributions. A visited set guards against cycles a
// buggy implementation might create.
func (r *Replayer) setReachable(id int, reachable bool, visited map[int]bool) {
	if id == 0 || visited[id] {
		return
	}
	visited[id] = true
	n := r.nodes[id]
	if n == nil || n.reachable == reachable {
		return
	}
	n.reachable = reachable
	if n.count > 0 {
		if reachable {
			r.countDelta(n.elt, n.count)
		} else {
			r.countDelta(n.elt, -n.count)
		}
	}
	r.setReachable(n.child[0], reachable, visited)
	r.setReachable(n.child[1], reachable, visited)
}

// Apply implements core.Replayer.
func (r *Replayer) Apply(op string, args []event.Value) error {
	switch op {
	case "node-new":
		if len(args) != 2 {
			return fmt.Errorf("mstree replay: node-new wants id and element, got %v", args)
		}
		id, ok1 := event.Int(args[0])
		elt, ok2 := event.Int(args[1])
		if !ok1 || !ok2 {
			return fmt.Errorf("mstree replay: node-new non-integer args %v", args)
		}
		if _, exists := r.nodes[id]; exists {
			return fmt.Errorf("mstree replay: duplicate node id %d", id)
		}
		r.nodes[id] = &rnode{id: id, elt: elt, count: 1}
		return nil

	case "root":
		if len(args) != 1 {
			return fmt.Errorf("mstree replay: root wants id, got %v", args)
		}
		id, ok := event.Int(args[0])
		if !ok {
			return fmt.Errorf("mstree replay: root non-integer arg %v", args)
		}
		if r.rootID != 0 {
			r.setReachable(r.rootID, false, map[int]bool{})
		}
		r.rootID = id
		if id != 0 {
			if r.nodes[id] == nil {
				return fmt.Errorf("mstree replay: root references unknown node %d", id)
			}
			r.setReachable(id, true, map[int]bool{})
		}
		return nil

	case "link":
		if len(args) != 3 {
			return fmt.Errorf("mstree replay: link wants parent, dir, child, got %v", args)
		}
		pid, ok1 := event.Int(args[0])
		dir, ok2 := event.Int(args[1])
		cid, ok3 := event.Int(args[2])
		if !ok1 || !ok2 || !ok3 || dir < 0 || dir > 1 {
			return fmt.Errorf("mstree replay: link bad args %v", args)
		}
		parent := r.nodes[pid]
		child := r.nodes[cid]
		if parent == nil || child == nil {
			return fmt.Errorf("mstree replay: link references unknown node (%d -> %d)", pid, cid)
		}
		// Local BST-order invariant.
		if (dir == dirLeft && child.elt >= parent.elt) || (dir == dirRight && child.elt <= parent.elt) {
			r.orderViolations++
		}
		if old := parent.child[dir]; old != 0 && parent.reachable {
			// Overwriting a populated child pointer detaches the old
			// subtree — this is exactly how the lost insert manifests.
			r.setReachable(old, false, map[int]bool{})
		}
		parent.child[dir] = cid
		if parent.reachable {
			r.setReachable(cid, true, map[int]bool{})
		}
		return nil

	case "unlink":
		if len(args) != 2 {
			return fmt.Errorf("mstree replay: unlink wants parent and dir, got %v", args)
		}
		pid, ok1 := event.Int(args[0])
		dir, ok2 := event.Int(args[1])
		if !ok1 || !ok2 || dir < 0 || dir > 1 {
			return fmt.Errorf("mstree replay: unlink bad args %v", args)
		}
		parent := r.nodes[pid]
		if parent == nil {
			return fmt.Errorf("mstree replay: unlink references unknown node %d", pid)
		}
		if old := parent.child[dir]; old != 0 {
			if parent.reachable {
				r.setReachable(old, false, map[int]bool{})
			}
			parent.child[dir] = 0
		}
		return nil

	case "node-count":
		if len(args) != 2 {
			return fmt.Errorf("mstree replay: node-count wants id and delta, got %v", args)
		}
		id, ok1 := event.Int(args[0])
		delta, ok2 := event.Int(args[1])
		if !ok1 || !ok2 {
			return fmt.Errorf("mstree replay: node-count non-integer args %v", args)
		}
		n := r.nodes[id]
		if n == nil {
			return fmt.Errorf("mstree replay: node-count references unknown node %d", id)
		}
		n.count += delta
		if n.reachable {
			r.countDelta(n.elt, delta)
		}
		return nil
	}
	return fmt.Errorf("mstree replay: unknown op %q", op)
}

// Invariants implements core.Replayer: links must respect BST ordering.
func (r *Replayer) Invariants() error {
	if r.orderViolations > 0 {
		return fmt.Errorf("%d link(s) violate the search-tree ordering", r.orderViolations)
	}
	return nil
}

// Counts exposes the reconstructed reachable element counts, for tests.
func (r *Replayer) Counts() map[int]int {
	out := make(map[int]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}
